//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --list              list experiment ids
//! repro fig16 fig18         run specific experiments
//! repro --all               run everything (paper order)
//! repro --all --markdown    emit EXPERIMENTS.md-ready markdown
//! repro --quick ...         use the fast test harness
//! ```

use std::io::Write;

use snake_bench::cli::{self, CliError};
use snake_bench::figures::{self, EvalMatrix};
use snake_bench::report::Table;
use snake_bench::Harness;
use snake_core::PrefetcherKind;
use snake_sim::Gpu;
use snake_workloads::Benchmark;

/// Window width (cycles) for the `--metrics-csv` time series.
const METRICS_WINDOW: u64 = 500;

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "table3", "fig03", "fig04", "fig05", "fig06", "fig09", "fig10", "fig11",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
    "xhead", "xsched", "xmulti",
];

fn usage() -> String {
    format!(
        "usage: repro [--quick] [--markdown] [--out FILE] [--metrics-csv FILE] (--list | --all | <experiment>...)\n  --metrics-csv FILE  run lps under snake with windowed metrics and write the time series\nexperiments: {}",
        EXPERIMENTS.join(" ")
    )
}

fn main() {
    match run() {
        Ok(()) => {}
        Err(e) => cli::fail("repro", &e, &usage()),
    }
}

fn run() -> Result<(), CliError> {
    let mut quick = false;
    let mut markdown = false;
    let mut all = false;
    let mut list = false;
    let mut out_file: Option<String> = None;
    let mut metrics_csv: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--markdown" => markdown = true,
            "--all" => all = true,
            "--list" => list = true,
            "--out" => {
                out_file = Some(
                    args.next()
                        .ok_or_else(|| CliError::Usage("--out needs a file operand".into()))?,
                );
            }
            "--metrics-csv" => {
                metrics_csv =
                    Some(args.next().ok_or_else(|| {
                        CliError::Usage("--metrics-csv needs a file operand".into())
                    })?);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag: {other}")));
            }
            other => wanted.push(other.to_string()),
        }
    }
    if list {
        for e in EXPERIMENTS {
            println!("{e}");
        }
        return Ok(());
    }
    if !all && wanted.is_empty() && metrics_csv.is_none() {
        return Err(CliError::Usage(
            "nothing to do: pass --all, --list, --metrics-csv, or experiment ids".into(),
        ));
    }
    for w in &wanted {
        if !EXPERIMENTS.contains(&w.as_str()) {
            return Err(CliError::BadArg {
                what: "experiment",
                why: format!("unknown experiment: {w}"),
            });
        }
    }

    let h = if quick {
        Harness::quick()
    } else {
        Harness::standard()
    };
    if let Some(path) = &metrics_csv {
        write_metrics_csv(&h, path)?;
    }
    if !all && wanted.is_empty() {
        return Ok(());
    }
    let tables = if all {
        figures::all(&h)
    } else {
        run_selected(&h, &wanted)?
    };

    let mut rendered = String::new();
    for t in &tables {
        if markdown {
            rendered.push_str(&t.to_markdown());
            rendered.push('\n');
        } else {
            rendered.push_str(&t.to_string());
            rendered.push('\n');
        }
    }
    match out_file {
        Some(path) => {
            let mut f = std::fs::File::create(&path).map_err(|e| CliError::io(&path, e))?;
            f.write_all(rendered.as_bytes())
                .map_err(|e| CliError::io(&path, e))?;
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// Runs LPS under Snake with windowed metrics enabled and writes the
/// resulting time series as CSV — the machine-readable companion to
/// `pfdebug --timeline`.
fn write_metrics_csv(h: &Harness, path: &str) -> Result<(), CliError> {
    let mut cfg = h.cfg.clone();
    cfg.metrics_window = Some(METRICS_WINDOW);
    let kernel = Benchmark::Lps.build(&h.size);
    let warps = cfg.max_warps_per_sm;
    let mut gpu = Gpu::new(cfg, kernel, |_| PrefetcherKind::Snake.build(warps))?;
    let out = gpu.run();
    let series = out
        .series
        .ok_or_else(|| CliError::Internal("metrics window set but no series returned".into()))?;
    let mut f = std::fs::File::create(path).map_err(|e| CliError::io(path, e))?;
    f.write_all(series.to_csv().as_bytes())
        .map_err(|e| CliError::io(path, e))?;
    eprintln!("wrote {} metric windows to {path}", series.samples.len());
    Ok(())
}

fn run_selected(h: &Harness, wanted: &[String]) -> Result<Vec<Table>, CliError> {
    // The timing matrix is only collected if a figure needs it.
    let needs_matrix = wanted.iter().any(|w| {
        matches!(
            w.as_str(),
            "fig03" | "fig04" | "fig05" | "fig16" | "fig17" | "fig18" | "fig19" | "fig25"
        )
    });
    let matrix = needs_matrix.then(|| {
        let mut kinds = figures::figure_mechanisms();
        kinds.push(PrefetcherKind::IsolatedSnake);
        EvalMatrix::collect(h, &kinds)
    });
    // `needs_matrix` lists exactly the figures that take the matrix, so
    // a miss here is a bug in this binary, not in the invocation.
    let need = |id: &str| -> Result<&EvalMatrix, CliError> {
        matrix.as_ref().ok_or_else(|| {
            CliError::Internal(format!(
                "{id} needs the timing matrix but it was not collected"
            ))
        })
    };
    wanted
        .iter()
        .map(|w| {
            Ok(match w.as_str() {
                "table1" => figures::table1_config(h),
                "table2" => figures::table2_benchmarks(),
                "table3" => figures::table3_cost(),
                "fig03" => figures::fig03_reservation_fails(need("fig03")?),
                "fig04" => figures::fig04_noc_utilization(need("fig04")?),
                "fig05" => figures::fig05_memory_stalls(need("fig05")?),
                "fig06" => figures::fig06_coverage_vs_ideal(h),
                "fig09" => figures::fig09_chain_pcs(h),
                "fig10" => figures::fig10_chain_repetition(h),
                "fig11" => figures::fig11_chain_vs_mta(h),
                "fig16" => figures::fig16_coverage(need("fig16")?),
                "fig17" => figures::fig17_accuracy(need("fig17")?),
                "fig18" => figures::fig18_performance(need("fig18")?),
                "fig19" => figures::fig19_energy(need("fig19")?),
                "fig20" => figures::fig20_tail_entries(h),
                "fig21" => figures::fig21_hw_cost(),
                "fig22" => figures::fig22_eviction_policy(h),
                "fig23" => figures::fig23_throttling(h),
                "fig24" => figures::fig24_tiling(h),
                "fig25" => figures::fig25_hit_rate(need("fig25")?),
                "xhead" => figures::extra_head_layout(h),
                "xsched" => figures::extra_scheduler(h),
                "xmulti" => figures::extra_multi_app(h),
                _ => unreachable!("validated above"),
            })
        })
        .collect()
}

//! `snaked` — the telemetry daemon: listens on a Unix-domain socket
//! for simulate/sweep jobs (`snakectl submit`), runs them through the
//! sweep supervisor in priority order, and streams live window rows
//! and trace events to `snakectl tail` subscribers.
//!
//! With `--state` the daemon is crash-safe: every accepted job, state
//! transition, and mid-simulation checkpoint is journaled, and a
//! restarted daemon (even after `kill -9`) replays the journal —
//! finished jobs keep their reports, unfinished jobs re-queue, and
//! mid-run simulations resume from their latest checkpoint.
//!
//! The process runs in the foreground until a `shutdown` request; run
//! it under a job control tool (or `&` in scripts) for background use.

use std::path::PathBuf;

use snake_bench::cli::{fail, CliError};
use snake_bench::serve::{serve, DaemonOptions};

const USAGE: &str = "usage: snaked [--socket PATH] [--state PATH] [--checkpoint-every N]
              [--workers N] [--quota-queued N] [--quota-running N]
              [--isolate]
  --socket PATH        Unix socket to listen on (default ./snaked.sock)
  --state PATH         append a JSONL state journal and recover from it
                       on startup (submitted/running/record/checkpoint/
                       terminal lines; kill -9 safe)
  --checkpoint-every N default mid-simulation checkpoint cadence in
                       cycles for journaled jobs (default 2000; submits
                       may override)
  --workers N          concurrent scheduler workers (default 2; a
                       running quota needs at least 2 to matter)
  --quota-queued N     max queued jobs per client id; further submits
                       are rejected with the typed quota error
  --quota-running N    max running jobs per client id; the scheduler
                       holds that client's queued jobs without starving
                       other clients
  --isolate            run every job in a sandboxed worker subprocess:
                       a crashing or runaway simulation is quarantined
                       with a typed crash kind instead of taking the
                       daemon down (rejects submits asking for the full
                       event stream)";

fn parse_args() -> Result<DaemonOptions, CliError> {
    let mut opts = DaemonOptions {
        socket: PathBuf::from("snaked.sock"),
        state_log: None,
        checkpoint_every: Some(2000),
        quota_queued: None,
        quota_running: None,
        workers: 2,
        isolate: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut operand = |what: &'static str| {
            args.next().ok_or(CliError::BadArg {
                what,
                why: "missing operand".into(),
            })
        };
        let positive = |what: &'static str, raw: String| -> Result<u64, CliError> {
            match raw.parse() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(CliError::BadArg {
                    what,
                    why: format!("not a positive integer: {raw:?}"),
                }),
            }
        };
        match arg.as_str() {
            "--socket" => opts.socket = PathBuf::from(operand("--socket")?),
            "--state" => opts.state_log = Some(PathBuf::from(operand("--state")?)),
            "--checkpoint-every" => {
                opts.checkpoint_every = Some(positive(
                    "--checkpoint-every",
                    operand("--checkpoint-every")?,
                )?);
            }
            "--workers" => {
                opts.workers = positive("--workers", operand("--workers")?)? as usize;
            }
            "--quota-queued" => {
                opts.quota_queued =
                    Some(positive("--quota-queued", operand("--quota-queued")?)? as usize);
            }
            "--quota-running" => {
                opts.quota_running =
                    Some(positive("--quota-running", operand("--quota-running")?)? as usize);
            }
            "--isolate" => opts.isolate = true,
            other => {
                return Err(CliError::Usage(format!("unknown argument {other:?}")));
            }
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => fail("snaked", &e, USAGE),
    };
    match serve(&opts) {
        Ok(handle) => {
            eprintln!("snaked: listening on {}", opts.socket.display());
            handle.join();
            eprintln!("snaked: shut down");
        }
        Err(e) => fail(
            "snaked",
            &CliError::io(opts.socket.display().to_string(), e),
            USAGE,
        ),
    }
}

//! `snaked` — the telemetry daemon: listens on a Unix-domain socket
//! for simulate/sweep jobs (`snakectl submit`), runs them through the
//! sweep supervisor in priority order, and streams live window rows
//! and trace events to `snakectl tail` subscribers.
//!
//! The process runs in the foreground until a `shutdown` request; run
//! it under a job control tool (or `&` in scripts) for background use.

use std::path::PathBuf;

use snake_bench::cli::{fail, CliError};
use snake_bench::serve::{serve, DaemonOptions};

const USAGE: &str = "usage: snaked [--socket PATH] [--state PATH]
  --socket PATH  Unix socket to listen on (default ./snaked.sock)
  --state PATH   append a JSONL job journal (submitted/terminal lines)";

fn parse_args() -> Result<DaemonOptions, CliError> {
    let mut opts = DaemonOptions {
        socket: PathBuf::from("snaked.sock"),
        state_log: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut operand = |what: &'static str| {
            args.next().ok_or(CliError::BadArg {
                what,
                why: "missing operand".into(),
            })
        };
        match arg.as_str() {
            "--socket" => opts.socket = PathBuf::from(operand("--socket")?),
            "--state" => opts.state_log = Some(PathBuf::from(operand("--state")?)),
            other => {
                return Err(CliError::Usage(format!("unknown argument {other:?}")));
            }
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => fail("snaked", &e, USAGE),
    };
    match serve(&opts) {
        Ok(handle) => {
            eprintln!("snaked: listening on {}", opts.socket.display());
            handle.join();
            eprintln!("snaked: shut down");
        }
        Err(e) => fail(
            "snaked",
            &CliError::io(opts.socket.display().to_string(), e),
            USAGE,
        ),
    }
}

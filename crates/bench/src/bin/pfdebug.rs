//! Prefetch-funnel diagnostics for one benchmark/mechanism pair.

use snake_bench::cli::{self, CliError};
use snake_bench::Harness;
use snake_core::PrefetcherKind;
use snake_sim::Gpu;
use snake_workloads::Benchmark;

fn usage() -> String {
    let benches: Vec<&str> = Benchmark::all().iter().map(|b| b.abbr()).collect();
    format!(
        "usage: pfdebug [BENCH] [MECHANISM]\n  BENCH: {} (default lps)\n  MECHANISM: a PrefetcherKind name, e.g. baseline, snake (default snake)",
        benches.join(" ")
    )
}

fn main() {
    if let Err(e) = run() {
        cli::fail("pfdebug", &e, &usage());
    }
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().collect();
    if args.len() > 3 {
        return Err(CliError::Usage(format!(
            "expected at most 2 arguments, got {}",
            args.len() - 1
        )));
    }
    let bench: Benchmark = match args.get(1) {
        Some(s) => {
            s.parse().map_err(
                |e: <Benchmark as std::str::FromStr>::Err| CliError::BadArg {
                    what: "benchmark",
                    why: e.to_string(),
                },
            )?
        }
        None => Benchmark::Lps,
    };
    let kind: PrefetcherKind = match args.get(2) {
        Some(s) => {
            s.parse().map_err(
                |e: <PrefetcherKind as std::str::FromStr>::Err| CliError::BadArg {
                    what: "mechanism",
                    why: e.to_string(),
                },
            )?
        }
        None => PrefetcherKind::Snake,
    };
    let h = Harness::standard();
    let kernel = bench.build(&h.size);
    let warps = h.cfg.max_warps_per_sm;
    let mut gpu = Gpu::new(h.cfg.clone(), kernel, |_| kind.build(warps))?;
    let out = gpu.run();
    let s = &out.stats;
    let p = &s.prefetch;
    println!("bench={bench} kind={} stop={:?}", kind.name(), out.stop);
    println!(
        "cycles={} instr={} ipc={:.3}",
        s.cycles,
        s.instructions,
        s.ipc()
    );
    println!(
        "demand={} hits={} hits_pf={} reserved={} merge_pf={} miss={} rfail={}",
        s.demand_loads,
        s.l1.hits,
        s.l1.hits_on_prefetch,
        s.l1.hits_reserved,
        s.l1.merges_with_prefetch,
        s.l1.misses,
        s.l1.reservation_fails()
    );
    println!(
        "pf requested={} issued={} redundant={} rejected={} fills={} useful={} late={} evicted_unused={} throttled_cy={}",
        p.requested, p.issued, p.redundant, p.rejected, p.fills, p.useful, p.late,
        p.evicted_unused, p.throttled_cycles
    );
    println!(
        "coverage={:.3} timely={:.3} precision={:.3} l1_hit={:.3} noc_util={:.3}",
        s.coverage(),
        s.timely_coverage(),
        s.prefetch.precision(),
        s.l1.hit_rate(),
        s.noc_utilization(u64::from(h.cfg.noc_bytes_per_cycle))
    );
    Ok(())
}

//! Prefetch-funnel diagnostics for one benchmark/mechanism pair.
//!
//! Besides the funnel counters, the binary exposes the observability
//! layer: `--trace-out` streams a Chrome trace-event JSON loadable in
//! Perfetto, `--timeline` renders the windowed time series as an ASCII
//! chart, `--profile` prints the run's per-phase host wall-time table,
//! and `--overhead-guard` measures the no-sink tracing overhead
//! against a recorded wall-clock baseline through the perf
//! observatory's noise-aware comparator (used by `scripts/ci.sh`).

use std::io::{BufWriter, Write};
use std::path::Path;
use std::time::Instant;

use snake_bench::cli::{self, CliError};
use snake_bench::perfstat::{self, compare, CompareConfig};
use snake_bench::Harness;
use snake_core::PrefetcherKind;
use snake_sim::obs::{chrome_trace_to, SharedVecSink};
use snake_sim::snapshot::{self, Checkpoint};
use snake_sim::Gpu;
use snake_workloads::Benchmark;

/// Window width (cycles) used when `--timeline` is given without an
/// explicit `--window`.
const DEFAULT_WINDOW: u64 = 1000;

/// Timed repetitions for `--overhead-guard` (the median of N runs
/// feeds the comparator; the first run doubles as warm-up).
const GUARD_REPS: u32 = 5;

/// Allowed slowdown of the no-sink path over the recorded baseline.
const GUARD_TOLERANCE: f64 = 1.02;

fn usage() -> String {
    let benches: Vec<&str> = Benchmark::all().iter().map(|b| b.abbr()).collect();
    format!(
        "usage: pfdebug [FLAGS] [BENCH] [MECHANISM]\n  \
         BENCH: {} (default lps)\n  \
         MECHANISM: a PrefetcherKind name, e.g. baseline, snake (default snake)\n  \
         --trace-out FILE       write a Chrome trace-event JSON (open in Perfetto)\n  \
         --timeline             print an ASCII timeline of the windowed metrics\n  \
         --window N             sample windowed metrics every N cycles (default {} with --timeline)\n  \
         --budget N             stop the run after N cycles (StopReason::BudgetExceeded)\n  \
         --profile              print the run's per-phase host wall-time table\n  \
         --overhead-guard FILE  time the no-sink path against the baseline in FILE\n                         (records FILE when absent; fails if >{:.0}% slower\n                         beyond the measured noise band)\n  \
         --checkpoint-at N      checkpoint the full simulator state at cycle N, then finish\n  \
         --checkpoint-out FILE  where --checkpoint-at writes (default BENCH-MECHANISM-cN.ckpt)\n  \
         --restore FILE         restore a checkpoint and run it to completion\n                         (schema/config mismatch exits {})\n  \
         --outcome-out FILE     write the final SimOutcome (Debug form) for byte comparison\n  \
         --diverge A B          bisect two checkpoints of the same run: restore the earlier,\n                         replay a golden device from cycle 0, report the first divergent\n                         cycle and state path (exit 1 on divergence)",
        benches.join(" "),
        DEFAULT_WINDOW,
        (GUARD_TOLERANCE - 1.0) * 100.0,
        cli::EXIT_CHECKPOINT_MISMATCH
    )
}

fn main() {
    if let Err(e) = run() {
        cli::fail("pfdebug", &e, &usage());
    }
}

fn run() -> Result<(), CliError> {
    let mut trace_out: Option<String> = None;
    let mut timeline = false;
    let mut window: Option<u64> = None;
    let mut budget: Option<u64> = None;
    let mut profile = false;
    let mut guard: Option<String> = None;
    let mut checkpoint_at: Option<u64> = None;
    let mut checkpoint_out: Option<String> = None;
    let mut restore: Option<String> = None;
    let mut outcome_out: Option<String> = None;
    let mut diverge: Option<(String, String)> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => {
                trace_out =
                    Some(args.next().ok_or_else(|| {
                        CliError::Usage("--trace-out needs a file operand".into())
                    })?);
            }
            "--timeline" => timeline = true,
            "--window" => {
                let raw = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--window needs a cycle count".into()))?;
                let n: u64 = raw.parse().map_err(|_| CliError::BadArg {
                    what: "window",
                    why: format!("not a cycle count: {raw:?}"),
                })?;
                if n == 0 {
                    return Err(CliError::BadArg {
                        what: "window",
                        why: "window must be at least one cycle".into(),
                    });
                }
                window = Some(n);
            }
            "--budget" => {
                let raw = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--budget needs a cycle count".into()))?;
                let n: u64 = raw.parse().map_err(|_| CliError::BadArg {
                    what: "budget",
                    why: format!("not a cycle count: {raw:?}"),
                })?;
                if n == 0 {
                    return Err(CliError::BadArg {
                        what: "budget",
                        why: "budget must be at least one cycle".into(),
                    });
                }
                budget = Some(n);
            }
            "--profile" => profile = true,
            "--checkpoint-at" => {
                let raw = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--checkpoint-at needs a cycle count".into()))?;
                let n: u64 = raw.parse().map_err(|_| CliError::BadArg {
                    what: "checkpoint-at",
                    why: format!("not a cycle count: {raw:?}"),
                })?;
                checkpoint_at = Some(n);
            }
            "--checkpoint-out" => {
                checkpoint_out = Some(args.next().ok_or_else(|| {
                    CliError::Usage("--checkpoint-out needs a file operand".into())
                })?);
            }
            "--restore" => {
                restore = Some(args.next().ok_or_else(|| {
                    CliError::Usage("--restore needs a checkpoint operand".into())
                })?);
            }
            "--outcome-out" => {
                outcome_out =
                    Some(args.next().ok_or_else(|| {
                        CliError::Usage("--outcome-out needs a file operand".into())
                    })?);
            }
            "--diverge" => {
                let a = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--diverge needs two checkpoints".into()))?;
                let b = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--diverge needs two checkpoints".into()))?;
                diverge = Some((a, b));
            }
            "--overhead-guard" => {
                guard = Some(args.next().ok_or_else(|| {
                    CliError::Usage("--overhead-guard needs a baseline file operand".into())
                })?);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag: {other}")));
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() > 2 {
        return Err(CliError::Usage(format!(
            "expected at most 2 positional arguments, got {}",
            positional.len()
        )));
    }
    let bench: Benchmark = match positional.first() {
        Some(s) => {
            s.parse().map_err(
                |e: <Benchmark as std::str::FromStr>::Err| CliError::BadArg {
                    what: "benchmark",
                    why: e.to_string(),
                },
            )?
        }
        None => Benchmark::Lps,
    };
    let kind: PrefetcherKind = match positional.get(1) {
        Some(s) => {
            s.parse().map_err(
                |e: <PrefetcherKind as std::str::FromStr>::Err| CliError::BadArg {
                    what: "mechanism",
                    why: e.to_string(),
                },
            )?
        }
        None => PrefetcherKind::Snake,
    };

    if let Some(path) = guard {
        return overhead_guard(&path, bench, kind);
    }
    if let Some((a, b)) = diverge {
        return diverge_report(&a, &b, bench, kind);
    }

    let mut h = Harness::standard();
    if timeline && window.is_none() {
        window = Some(DEFAULT_WINDOW);
    }
    h.cfg.metrics_window = window;
    h.cfg.cycle_budget = budget.map(snake_sim::Cycle);
    h.cfg.host_profile = profile;
    let kernel = bench.build(&h.size);
    let warps = h.cfg.max_warps_per_sm;
    let mut gpu = Gpu::new(h.cfg.clone(), kernel, |_| kind.build(warps))?;
    let sink = trace_out.as_ref().map(|_| {
        let s = SharedVecSink::new();
        gpu.attach_sink(Box::new(s.clone()));
        s
    });
    if let Some(path) = &restore {
        let ckpt = Checkpoint::load(Path::new(path))?;
        gpu.restore(&ckpt)?;
        eprintln!("restored {path} at cycle {}", gpu.cycle().0);
    }
    let out = match checkpoint_at {
        Some(n) => match gpu.run_interruptible(|c| c.0 >= n) {
            // Suspended at the requested cycle: capture, then finish
            // the run normally from the captured state.
            None => {
                let path = checkpoint_out.unwrap_or_else(|| {
                    format!("{}-{}-c{}.ckpt", bench.abbr(), kind.name(), gpu.cycle().0)
                });
                gpu.checkpoint().write_atomic(Path::new(&path))?;
                eprintln!("wrote checkpoint at cycle {} to {path}", gpu.cycle().0);
                gpu.run()
            }
            Some(out) => {
                eprintln!("run finished before cycle {n}; no checkpoint written");
                out
            }
        },
        None => gpu.run(),
    };
    let s = &out.stats;
    let p = &s.prefetch;
    println!("bench={bench} kind={} stop={:?}", kind.name(), out.stop);
    println!(
        "cycles={} instr={} ipc={:.3}",
        s.cycles,
        s.instructions,
        s.ipc()
    );
    println!(
        "demand={} hits={} hits_pf={} reserved={} merge_pf={} miss={} rfail={}",
        s.demand_loads,
        s.l1.hits,
        s.l1.hits_on_prefetch,
        s.l1.hits_reserved,
        s.l1.merges_with_prefetch,
        s.l1.misses,
        s.l1.reservation_fails()
    );
    println!(
        "pf requested={} issued={} redundant={} rejected={} fills={} useful={} late={} evicted_unused={} throttled_cy={}",
        p.requested, p.issued, p.redundant, p.rejected, p.fills, p.useful, p.late,
        p.evicted_unused, p.throttled_cycles
    );
    println!(
        "coverage={:.3} timely={:.3} precision={:.3} l1_hit={:.3} noc_util={:.3}",
        s.coverage(),
        s.timely_coverage(),
        s.prefetch.precision(),
        s.l1.hit_rate(),
        s.noc_utilization(u64::from(h.cfg.noc_bytes_per_cycle))
    );
    println!(
        "lifecycle issue->fill {} | fill->first-use {} | unused lifetime {}",
        out.lifecycle.issue_to_fill, out.lifecycle.fill_to_first_use, out.lifecycle.lifetime_unused
    );
    if let Some(path) = &outcome_out {
        std::fs::write(path, format!("{out:?}\n")).map_err(|e| CliError::io(path, e))?;
        eprintln!("wrote outcome to {path}");
    }
    if let Some(path) = trace_out {
        let events = sink.expect("sink attached with trace_out").snapshot();
        // Stream the document: peak memory is one event's formatting
        // buffer, not the whole multi-megabyte JSON string.
        let f = std::fs::File::create(&path).map_err(|e| CliError::io(&path, e))?;
        let mut w = BufWriter::new(f);
        chrome_trace_to(&events, &mut w).map_err(|e| CliError::io(&path, e))?;
        w.flush().map_err(|e| CliError::io(&path, e))?;
        eprintln!("wrote {} events to {path}", events.len());
    }
    if profile {
        match &out.host {
            Some(host) => print!(
                "{}",
                perfstat::profile_table(
                    &format!("{}/{}", bench.abbr(), kind.name()),
                    std::slice::from_ref(host)
                )
            ),
            None => eprintln!("no host profile collected"),
        }
    }
    if timeline {
        match &out.series {
            Some(series) => print!("{}", series.ascii_timeline()),
            None => eprintln!("no metrics series collected"),
        }
    }
    Ok(())
}

/// `--diverge A B`: the checkpoint divergence bisector.
///
/// Both checkpoints must come from runs of the BENCH/MECHANISM pair
/// given on the command line (enforced by the config fingerprint; a
/// mismatch exits with the checkpoint-mismatch code). The earlier
/// checkpoint is restored onto a fresh device while a *golden* device
/// replays the same run from cycle zero; from the earlier cycle on,
/// the two advance in lockstep with their full state compared every
/// cycle. The first cycle where the restored trajectory leaves the
/// golden one is reported together with the state path that differs
/// (`sms/3/l1/...`), which is the bit that failed to round-trip. At
/// the later checkpoint's cycle the golden state is also compared
/// against that checkpoint itself, catching capture-side bugs.
///
/// Exits 0 when both checkpoints sit on the golden trajectory, 1 on
/// any divergence.
fn diverge_report(
    a_path: &str,
    b_path: &str,
    bench: Benchmark,
    kind: PrefetcherKind,
) -> Result<(), CliError> {
    let h = Harness::standard();
    let kernel = bench.build(&h.size);
    let warps = h.cfg.max_warps_per_sm;
    let mut a = Checkpoint::load(Path::new(a_path))?;
    let mut b = Checkpoint::load(Path::new(b_path))?;
    let mut ca = snapshot::u64_field(&a.state, "cycle").map_err(CliError::Checkpoint)?;
    let mut cb = snapshot::u64_field(&b.state, "cycle").map_err(CliError::Checkpoint)?;
    let (mut a_name, mut b_name) = (a_path, b_path);
    if cb < ca {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut ca, &mut cb);
        std::mem::swap(&mut a_name, &mut b_name);
    }

    let mut restored = Gpu::new(h.cfg.clone(), kernel.clone(), |_| kind.build(warps))?;
    restored.restore(&a)?;
    b.verify_fingerprint(restored.fingerprint())?;

    let mut golden = Gpu::new(h.cfg.clone(), kernel.clone(), |_| kind.build(warps))?;
    if golden.run_interruptible(|c| c.0 >= ca).is_some() {
        return Err(CliError::BadArg {
            what: "checkpoint",
            why: format!(
                "{a_name}: golden replay of {bench}/{} finished at cycle {} \
                 before the checkpoint cycle {ca}",
                kind.name(),
                golden.cycle().0
            ),
        });
    }

    loop {
        let at = golden.cycle().0;
        if let Some(path) =
            snapshot::first_divergence(&restored.checkpoint().state, &golden.checkpoint().state)
        {
            println!(
                "diverged at cycle {at}: {path}\n  \
                 restored-from-{a_name} trajectory vs golden replay from cycle 0"
            );
            std::process::exit(1);
        }
        if at >= cb {
            break;
        }
        let g = golden.run_interruptible(|_| true);
        let r = restored.run_interruptible(|_| true);
        if g.is_some() || r.is_some() {
            if g.is_some() != r.is_some() {
                println!(
                    "diverged at cycle {}: one trajectory finished, the other kept running",
                    golden.cycle().0
                );
                std::process::exit(1);
            }
            break;
        }
    }
    if let Some(path) = snapshot::first_divergence(&b.state, &golden.checkpoint().state) {
        println!("diverged: {b_name} (cycle {cb}) disagrees with the golden replay at {path}");
        std::process::exit(1);
    }
    println!(
        "no divergence: {a_name} (cycle {ca}) and {b_name} (cycle {cb}) \
         both sit on the golden trajectory"
    );
    Ok(())
}

/// Times the no-sink path and compares against (or records) the
/// wall-clock baseline in `path`.
///
/// The baseline file holds a single integer: the median-of-N run time
/// in nanoseconds, recorded on this machine by a previous invocation
/// (a single-sample, zero-variance baseline in the perf observatory's
/// terms). A missing file records the current measurement and
/// succeeds, so CI can bootstrap the baseline on first run. The
/// verdict comes from `perfstat::compare::is_regression`: the delta
/// must clear the [`GUARD_TOLERANCE`] relative bar *and* the measured
/// spread of the current repetitions.
fn overhead_guard(path: &str, bench: Benchmark, kind: PrefetcherKind) -> Result<(), CliError> {
    let h = Harness::standard();
    let kernel = bench.build(&h.size);
    let warps = h.cfg.max_warps_per_sm;
    let mut samples: Vec<u64> = Vec::with_capacity(GUARD_REPS as usize);
    for _ in 0..GUARD_REPS {
        let mut gpu = Gpu::new(h.cfg.clone(), kernel.clone(), |_| kind.build(warps))?;
        let start = Instant::now();
        let out = gpu.run();
        let elapsed = start.elapsed().as_nanos() as u64;
        assert!(out.stats.cycles > 0, "guard run did no work");
        samples.push(elapsed);
    }
    let (cur_med, cur_iqr) = compare::median_iqr(&samples);
    match std::fs::read_to_string(path) {
        Ok(raw) => {
            let baseline_ns: u64 = raw.trim().parse().map_err(|_| CliError::BadArg {
                what: "baseline",
                why: format!("{path}: not a nanosecond count: {:?}", raw.trim()),
            })?;
            let ratio = cur_med / baseline_ns.max(1) as f64;
            println!(
                "overhead-guard: median {cur_med:.0} ns (IQR {cur_iqr:.0}) \
                 vs baseline {baseline_ns} ns (x{ratio:.4})"
            );
            let cfg = CompareConfig {
                rel_threshold: GUARD_TOLERANCE - 1.0,
                ..CompareConfig::default()
            };
            if compare::is_regression(baseline_ns as f64, 0.0, cur_med, cur_iqr, &cfg) {
                eprintln!(
                    "pfdebug: no-sink trace path regressed {:.1}% (limit {:.0}% + noise band)",
                    (ratio - 1.0) * 100.0,
                    (GUARD_TOLERANCE - 1.0) * 100.0
                );
                std::process::exit(1);
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            std::fs::write(path, format!("{cur_med:.0}\n")).map_err(|e| CliError::io(path, e))?;
            println!("overhead-guard: recorded baseline {cur_med:.0} ns in {path}");
            Ok(())
        }
        Err(e) => Err(CliError::io(path, e)),
    }
}

//! `snakectl` — client for the `snaked` telemetry daemon.
//!
//! * `submit` queues a sweep and prints its job id.
//! * `status [ID]` prints the daemon's job registry (JSON, one line).
//! * `tail ID` follows a job live: one line per metrics window (IPC,
//!   L1 hit rate, MSHR occupancy, chain depth, throttle state), a
//!   sweep progress line whenever the counters change, and a final
//!   `done` line; the process exits with the job's exit code (7 when
//!   the job was cancelled).
//! * `cancel ID` cancels a queued or running job.
//! * `shutdown` stops the daemon (cancelling everything live).

use std::path::PathBuf;

use snake_bench::cli::{fail, CliError};
use snake_bench::serve::client;
use snake_bench::serve::{Request, SubmitSpec};
use snake_core::json::Value;

const USAGE: &str = "usage: snakectl [--socket PATH] COMMAND
commands:
  submit [--benchmarks LIST] [--mechanisms LIST] [--quick]
         [--budget CYCLES] [--window CYCLES] [--events] [--priority N]
                 queue a sweep; prints the job id
  status [ID]    print job states as JSON
  tail ID        follow a job's live telemetry; exits with its code
  cancel ID      cancel a queued or running job
  shutdown       stop the daemon
  --socket PATH  daemon socket (default ./snaked.sock)";

struct Cli {
    socket: PathBuf,
    request: Request,
}

fn operand(
    args: &mut impl Iterator<Item = String>,
    what: &'static str,
) -> Result<String, CliError> {
    args.next().ok_or(CliError::BadArg {
        what,
        why: "missing operand".into(),
    })
}

fn parse_u64(raw: &str, what: &'static str) -> Result<u64, CliError> {
    raw.parse().map_err(|_| CliError::BadArg {
        what,
        why: format!("not a non-negative integer: {raw:?}"),
    })
}

fn parse_args() -> Result<Cli, CliError> {
    let mut socket = PathBuf::from("snaked.sock");
    let mut args = std::env::args().skip(1).peekable();
    while args.peek().map(String::as_str) == Some("--socket") {
        args.next();
        socket = PathBuf::from(operand(&mut args, "--socket")?);
    }
    let command = operand(&mut args, "command")?;
    let request = match command.as_str() {
        "submit" => {
            let mut spec = SubmitSpec::default();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--benchmarks" => spec.benchmarks = Some(operand(&mut args, "--benchmarks")?),
                    "--mechanisms" => spec.mechanisms = Some(operand(&mut args, "--mechanisms")?),
                    "--quick" => spec.quick = true,
                    "--events" => spec.events = true,
                    "--budget" => {
                        spec.budget =
                            Some(parse_u64(&operand(&mut args, "--budget")?, "--budget")?);
                    }
                    "--window" => {
                        spec.window =
                            Some(parse_u64(&operand(&mut args, "--window")?, "--window")?);
                    }
                    "--priority" => {
                        spec.priority =
                            parse_u64(&operand(&mut args, "--priority")?, "--priority")?;
                    }
                    other => return Err(CliError::Usage(format!("unknown argument {other:?}"))),
                }
            }
            Request::Submit(spec)
        }
        "status" => Request::Status {
            id: args
                .next()
                .map(|raw| parse_u64(&raw, "job id"))
                .transpose()?,
        },
        "tail" => Request::Tail {
            id: parse_u64(&operand(&mut args, "job id")?, "job id")?,
        },
        "cancel" => Request::Cancel {
            id: parse_u64(&operand(&mut args, "job id")?, "job id")?,
        },
        "shutdown" => Request::Shutdown,
        other => return Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    Ok(Cli { socket, request })
}

/// Renders one tail stream object as a human-readable line.
fn render(v: &Value) -> Option<String> {
    let kind = v.get("type").and_then(Value::as_str)?;
    let s = |k: &str| v.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let n = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    let f = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    match kind {
        "stream" => Some(format!("stream {} from seq {}", s("job"), n("from"))),
        "window" => Some(format!(
            "window {} cycle={} ipc={:.3} l1={:.1}% mshr={:.1}% chain={} \
             throttled={} warps={} dropped={}",
            s("job"),
            n("cycle"),
            f("ipc"),
            f("l1_hit_rate") * 100.0,
            f("mshr_occupancy") * 100.0,
            n("chain_depth"),
            n("throttled_sms"),
            n("active_warps"),
            n("dropped"),
        )),
        "event" => Some(format!(
            "event {} cycle={} {}",
            s("job"),
            n("cycle"),
            s("name")
        )),
        "progress" => Some(format!(
            "progress {}/{} done, {} quarantined, {} remaining, {} retries",
            n("done"),
            n("total"),
            n("quarantined"),
            n("remaining"),
            n("retries"),
        )),
        "done" => Some(format!(
            "done state={} exit={} delivered={} dropped={}",
            s("state"),
            n("exit"),
            n("delivered"),
            n("dropped"),
        )),
        _ => None,
    }
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => fail("snakectl", &e, USAGE),
    };
    let io_fail = |e: std::io::Error| -> ! {
        fail(
            "snakectl",
            &CliError::io(cli.socket.display().to_string(), e),
            USAGE,
        )
    };
    match &cli.request {
        Request::Tail { id } => {
            let end = client::tail(&cli.socket, *id, |line| {
                if let Some(text) = render(line) {
                    println!("{text}");
                }
            })
            .unwrap_or_else(|e| io_fail(e));
            std::process::exit(end.exit);
        }
        req => {
            let response = client::request(&cli.socket, req).unwrap_or_else(|e| io_fail(e));
            match req {
                Request::Submit(_) => {
                    // Just the id, so scripts can capture it.
                    println!(
                        "{}",
                        response.get("id").and_then(Value::as_u64).unwrap_or(0)
                    );
                }
                Request::Status { .. } => {
                    let body = response
                        .get("jobs")
                        .or_else(|| response.get("job"))
                        .cloned()
                        .unwrap_or(Value::Null);
                    println!("{body}");
                }
                Request::Cancel { id } => {
                    let state = response.get("state").and_then(Value::as_str).unwrap_or("?");
                    println!("job {id}: {state}");
                }
                Request::Shutdown => println!("daemon shutting down"),
                Request::Tail { .. } => unreachable!("handled above"),
            }
        }
    }
}

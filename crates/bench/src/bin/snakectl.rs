//! `snakectl` — client for the `snaked` telemetry daemon.
//!
//! * `submit` queues a sweep and prints its job id; `--client` tags it
//!   for quota accounting, `--deadline-ms` bounds each scheduling
//!   slice (suspend-to-checkpoint + requeue on expiry), and
//!   `--checkpoint-every` overrides the daemon's checkpoint cadence.
//!   A quota rejection exits with the distinct code 8.
//! * `status [ID]` prints the daemon's job registry (JSON, one line).
//! * `tail ID` follows a job live: one line per metrics window (IPC,
//!   L1 hit rate, MSHR occupancy, chain depth, throttle state), a
//!   sweep progress line whenever the counters change, and a final
//!   `done` line; the process exits with the job's exit code (7 when
//!   the job was cancelled). `--from-seq`/`--ring` reconnect a cut-off
//!   subscription mid-stream without re-reading (or silently missing)
//!   anything.
//! * `top ID` renders a live dashboard for a running job: per-window
//!   IPC, the eight-bucket issue-slot stall breakdown as a stacked
//!   bar, MSHR/miss-queue/NoC occupancy gauges, and drop-accounting
//!   health, repainted in place (plain ANSI) every window. `--once`
//!   prints a single snapshot and exits 0; `--ring`/`--from-seq`
//!   reconnect mid-stream with the same verified drop accounting as
//!   `tail`.
//! * `reports ID` prints a finished job's report rows (JSON, one
//!   line) — stable bytes, suitable for diffing two runs.
//! * `health` prints the daemon's self-diagnostics: journal
//!   degradation counters, dropped tail subscribers, checkpoints.
//! * `cancel ID` cancels a queued or running job.
//! * `shutdown` stops the daemon (cancelling everything live).

use std::path::{Path, PathBuf};

use snake_bench::cli::{fail, CliError};
use snake_bench::serve::client::{self, ClientError, TailOutcome};
use snake_bench::serve::{Request, SubmitSpec, EXIT_QUOTA};
use snake_core::json::Value;

const USAGE: &str = "usage: snakectl [--socket PATH] COMMAND
commands:
  submit [--benchmarks LIST] [--mechanisms LIST] [--quick]
         [--budget CYCLES] [--window CYCLES] [--events] [--priority N]
         [--client NAME] [--deadline-ms MS] [--checkpoint-every CYCLES]
         [--isolate]
                 queue a sweep; prints the job id
                 (exit 8: rejected by the per-client quota;
                  --isolate runs each job in a sandboxed subprocess —
                  crashes quarantine with a typed kind instead of
                  killing the daemon; incompatible with --events)
  status [ID]    print job states as JSON
  tail ID [--ring N] [--from-seq N]
                 follow a job's live telemetry; exits with its code;
                 --ring/--from-seq resume a cut-off subscription
  top ID [--once] [--ring N] [--from-seq N]
                 live dashboard: IPC, stall-reason stacked bar,
                 MSHR/NoC occupancy, drop health; --once prints one
                 snapshot and exits 0
  reports ID     print a finished job's report rows as JSON
  health         print daemon health (journal state, drop counters)
  cancel ID      cancel a queued or running job
  shutdown       stop the daemon
  --socket PATH  daemon socket (default ./snaked.sock)";

enum Command {
    /// One-shot request/response operations.
    Oneshot(Request),
    /// The streaming tail, with reconnect coordinates.
    Tail {
        id: u64,
        ring: u64,
        from: Option<u64>,
    },
    /// The live dashboard (same stream as `tail`, repainted in place).
    Top {
        id: u64,
        ring: u64,
        from: Option<u64>,
        once: bool,
    },
    /// Fetch one job's status and print only its report rows.
    Reports { id: u64 },
}

struct Cli {
    socket: PathBuf,
    command: Command,
}

fn operand(
    args: &mut impl Iterator<Item = String>,
    what: &'static str,
) -> Result<String, CliError> {
    args.next().ok_or(CliError::BadArg {
        what,
        why: "missing operand".into(),
    })
}

fn parse_u64(raw: &str, what: &'static str) -> Result<u64, CliError> {
    raw.parse().map_err(|_| CliError::BadArg {
        what,
        why: format!("not a non-negative integer: {raw:?}"),
    })
}

fn parse_args() -> Result<Cli, CliError> {
    let mut socket = PathBuf::from("snaked.sock");
    let mut args = std::env::args().skip(1).peekable();
    while args.peek().map(String::as_str) == Some("--socket") {
        args.next();
        socket = PathBuf::from(operand(&mut args, "--socket")?);
    }
    let command = operand(&mut args, "command")?;
    let command = match command.as_str() {
        "submit" => {
            let mut spec = SubmitSpec::default();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--benchmarks" => spec.benchmarks = Some(operand(&mut args, "--benchmarks")?),
                    "--mechanisms" => spec.mechanisms = Some(operand(&mut args, "--mechanisms")?),
                    "--quick" => spec.quick = true,
                    "--events" => spec.events = true,
                    "--isolate" => spec.isolate = true,
                    "--budget" => {
                        spec.budget =
                            Some(parse_u64(&operand(&mut args, "--budget")?, "--budget")?);
                    }
                    "--window" => {
                        spec.window =
                            Some(parse_u64(&operand(&mut args, "--window")?, "--window")?);
                    }
                    "--priority" => {
                        spec.priority =
                            parse_u64(&operand(&mut args, "--priority")?, "--priority")?;
                    }
                    "--client" => spec.client = Some(operand(&mut args, "--client")?),
                    "--deadline-ms" => {
                        spec.deadline_ms = Some(parse_u64(
                            &operand(&mut args, "--deadline-ms")?,
                            "--deadline-ms",
                        )?);
                    }
                    "--checkpoint-every" => {
                        spec.checkpoint_every = Some(parse_u64(
                            &operand(&mut args, "--checkpoint-every")?,
                            "--checkpoint-every",
                        )?);
                    }
                    other => return Err(CliError::Usage(format!("unknown argument {other:?}"))),
                }
            }
            Command::Oneshot(Request::Submit(spec))
        }
        "status" => Command::Oneshot(Request::Status {
            id: args
                .next()
                .map(|raw| parse_u64(&raw, "job id"))
                .transpose()?,
        }),
        "tail" => {
            let id = parse_u64(&operand(&mut args, "job id")?, "job id")?;
            let mut ring = 0;
            let mut from = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--ring" => ring = parse_u64(&operand(&mut args, "--ring")?, "--ring")?,
                    "--from-seq" => {
                        from = Some(parse_u64(&operand(&mut args, "--from-seq")?, "--from-seq")?);
                    }
                    other => return Err(CliError::Usage(format!("unknown argument {other:?}"))),
                }
            }
            Command::Tail { id, ring, from }
        }
        "top" => {
            let id = parse_u64(&operand(&mut args, "job id")?, "job id")?;
            let mut ring = 0;
            let mut from = None;
            let mut once = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--once" => once = true,
                    "--ring" => ring = parse_u64(&operand(&mut args, "--ring")?, "--ring")?,
                    "--from-seq" => {
                        from = Some(parse_u64(&operand(&mut args, "--from-seq")?, "--from-seq")?);
                    }
                    other => return Err(CliError::Usage(format!("unknown argument {other:?}"))),
                }
            }
            Command::Top {
                id,
                ring,
                from,
                once,
            }
        }
        "reports" => Command::Reports {
            id: parse_u64(&operand(&mut args, "job id")?, "job id")?,
        },
        "health" => Command::Oneshot(Request::Health),
        "cancel" => Command::Oneshot(Request::Cancel {
            id: parse_u64(&operand(&mut args, "job id")?, "job id")?,
        }),
        "shutdown" => Command::Oneshot(Request::Shutdown),
        other => return Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    Ok(Cli { socket, command })
}

/// Renders one tail stream object as a human-readable line.
fn render(v: &Value) -> Option<String> {
    let kind = v.get("type").and_then(Value::as_str)?;
    let s = |k: &str| v.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let n = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    let f = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    match kind {
        "stream" => Some(format!("stream {} from seq {}", s("job"), n("from"))),
        "window" => Some(format!(
            "window {} cycle={} ipc={:.3} l1={:.1}% mshr={:.1}% chain={} \
             throttled={} warps={} dropped={}",
            s("job"),
            n("cycle"),
            f("ipc"),
            f("l1_hit_rate") * 100.0,
            f("mshr_occupancy") * 100.0,
            n("chain_depth"),
            n("throttled_sms"),
            n("active_warps"),
            n("dropped"),
        )),
        "event" => Some(format!(
            "event {} cycle={} {}",
            s("job"),
            n("cycle"),
            s("name")
        )),
        "progress" => Some(format!(
            "progress {}/{} done, {} quarantined, {} remaining, {} retries",
            n("done"),
            n("total"),
            n("quarantined"),
            n("remaining"),
            n("retries"),
        )),
        "done" => Some(format!(
            "done state={} exit={} delivered={} dropped={}",
            s("state"),
            n("exit"),
            n("delivered"),
            n("dropped"),
        )),
        _ => None,
    }
}

/// Stall-taxonomy buckets in display order: window-line field suffix,
/// bar glyph, and short label. The glyphs stack into the breakdown bar.
const STALL_BUCKETS: [(&str, char, &str); 8] = [
    ("issued", '#', "issued"),
    ("no_warp", ' ', "no-warp"),
    ("barrier", 'B', "barrier"),
    ("scoreboard", 'S', "scoreb"),
    ("mem_data", 'D', "mem-data"),
    ("mem_mshr", 'M', "mshr"),
    ("mem_missq", 'Q', "missq"),
    ("mem_noc", 'N', "noc"),
];

/// State behind the `top` dashboard: the latest window row plus stream
/// health counters, repainted in place after every update.
#[derive(Default)]
struct Dashboard {
    job: String,
    cycle: u64,
    seq: u64,
    dropped: u64,
    ipc: f64,
    l1: f64,
    mshr: f64,
    missq: f64,
    noc: f64,
    warps: u64,
    throttled: u64,
    chain: u64,
    stall: [f64; 8],
    windows: u64,
    events: u64,
    progress: Option<String>,
    /// Lines painted by the previous repaint (cursor-up distance).
    painted: usize,
}

/// A `[####......]`-style occupancy gauge.
fn gauge(frac: f64, width: usize) -> String {
    let fill = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut bar = String::with_capacity(width);
    for i in 0..width {
        bar.push(if i < fill { '#' } else { '.' });
    }
    bar
}

impl Dashboard {
    /// Folds one stream line into the dashboard state. Returns `true`
    /// when the visible state changed (a repaint is due).
    fn observe(&mut self, v: &Value) -> bool {
        let n = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
        let f = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        match v.get("type").and_then(Value::as_str) {
            Some("stream") => {
                if let Some(job) = v.get("job").and_then(Value::as_str) {
                    self.job = job.to_string();
                }
                false
            }
            Some("window") => {
                self.cycle = n("cycle");
                self.seq = n("seq");
                self.dropped = n("dropped");
                self.ipc = f("ipc");
                self.l1 = f("l1_hit_rate");
                self.mshr = f("mshr_occupancy");
                self.missq = f("miss_queue_occupancy");
                self.noc = f("noc_utilization");
                self.warps = n("active_warps");
                self.throttled = n("throttled_sms");
                self.chain = n("chain_depth");
                for (i, (key, _, _)) in STALL_BUCKETS.iter().enumerate() {
                    self.stall[i] = f(&format!("stall_{key}"));
                }
                self.windows += 1;
                true
            }
            Some("event") => {
                self.events += 1;
                self.dropped = self.dropped.max(n("dropped"));
                false
            }
            Some("progress") => {
                self.progress = Some(format!(
                    "sweep {}/{} done, {} quarantined, {} retries",
                    n("done"),
                    n("total"),
                    n("quarantined"),
                    n("retries"),
                ));
                true
            }
            _ => false,
        }
    }

    /// The stall breakdown as a stacked bar: each bucket's glyph
    /// repeated in proportion to its fraction of the window's issue
    /// slots.
    fn stacked_bar(&self, width: usize) -> String {
        let mut bar = String::with_capacity(width);
        for (i, &frac) in self.stall.iter().enumerate() {
            let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
            for _ in 0..n {
                if bar.chars().count() < width {
                    bar.push(STALL_BUCKETS[i].1);
                }
            }
        }
        while bar.chars().count() < width {
            bar.push('.');
        }
        bar
    }

    /// Repaints the dashboard in place: moves the cursor up over the
    /// previous frame (plain ANSI, same escapes as `repro --progress`)
    /// and rewrites each line, clearing to end-of-line.
    fn paint(&mut self) {
        let health = if self.dropped == 0 {
            "ok (0 dropped)".to_string()
        } else {
            format!("{} dropped", self.dropped)
        };
        let pct100 = |v: f64| format!("{:.1}%", v * 100.0);
        let mut lines = vec![
            format!(
                "top {}  window #{}  cycle {}  seq {}  stream {}",
                self.job, self.windows, self.cycle, self.seq, health
            ),
            format!(
                "ipc {:.3}  l1 {}  warps {}  throttled {}  chain {}  events {}",
                self.ipc,
                pct100(self.l1),
                self.warps,
                self.throttled,
                self.chain,
                self.events
            ),
            format!(
                "mshr [{}] {}  missq [{}] {}  noc [{}] {}",
                gauge(self.mshr, 10),
                pct100(self.mshr),
                gauge(self.missq, 10),
                pct100(self.missq),
                gauge(self.noc, 10),
                pct100(self.noc)
            ),
            format!("stall [{}]", self.stacked_bar(40)),
            STALL_BUCKETS
                .iter()
                .zip(self.stall.iter())
                .map(|((_, _, label), &frac)| format!("{label} {}", pct100(frac)))
                .collect::<Vec<_>>()
                .join(" | "),
        ];
        if let Some(progress) = &self.progress {
            lines.push(progress.clone());
        }
        if self.painted > 0 {
            print!("\x1b[{}A", self.painted);
        }
        for line in &lines {
            println!("{line}\x1b[K");
        }
        self.painted = lines.len();
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
}

/// Exits with the code a client failure calls for: the typed quota
/// rejection gets its own exit code ([`EXIT_QUOTA`]), other daemon
/// refusals exit 2, transport failures go through the shared CLI path.
fn client_fail(socket: &Path, e: ClientError) -> ! {
    match e {
        ClientError::Daemon { message, code } => {
            eprintln!("snakectl: {message}");
            if code.as_deref() == Some("quota") {
                std::process::exit(EXIT_QUOTA);
            }
            std::process::exit(2);
        }
        ClientError::Io(e) => fail(
            "snakectl",
            &CliError::io(socket.display().to_string(), e),
            USAGE,
        ),
    }
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => fail("snakectl", &e, USAGE),
    };
    match &cli.command {
        Command::Tail { id, ring, from } => {
            let end = client::tail_from(&cli.socket, *id, *ring, *from, |line| {
                if let Some(text) = render(line) {
                    println!("{text}");
                }
            })
            .unwrap_or_else(|e| client_fail(&cli.socket, e));
            std::process::exit(end.exit);
        }
        Command::Top {
            id,
            ring,
            from,
            once,
        } => {
            let mut dash = Dashboard::default();
            if *once {
                // Stop as soon as one window has been rendered.
                let out = client::tail_watch(&cli.socket, *id, *ring, *from, |line| {
                    if dash.observe(line) && dash.windows > 0 {
                        dash.paint();
                    }
                    dash.windows == 0
                })
                .unwrap_or_else(|e| client_fail(&cli.socket, e));
                match out {
                    TailOutcome::Stopped => std::process::exit(0),
                    TailOutcome::Done(end) => {
                        // The job ended before (or right as) the first
                        // window arrived; paint what we have.
                        dash.paint();
                        std::process::exit(if dash.windows > 0 { 0 } else { end.exit });
                    }
                }
            }
            let end = client::tail_from(&cli.socket, *id, *ring, *from, |line| {
                if dash.observe(line) {
                    dash.paint();
                }
            })
            .unwrap_or_else(|e| client_fail(&cli.socket, e));
            println!(
                "done state={} exit={} delivered={} dropped={}",
                end.state, end.exit, end.delivered, end.dropped
            );
            std::process::exit(end.exit);
        }
        Command::Reports { id } => {
            let response = client::request(&cli.socket, &Request::Status { id: Some(*id) })
                .unwrap_or_else(|e| client_fail(&cli.socket, e));
            let reports = response
                .get("job")
                .and_then(|j| j.get("reports"))
                .cloned()
                .unwrap_or(Value::Arr(Vec::new()));
            println!("{reports}");
        }
        Command::Oneshot(req) => {
            let response =
                client::request(&cli.socket, req).unwrap_or_else(|e| client_fail(&cli.socket, e));
            match req {
                Request::Submit(_) => {
                    // Just the id, so scripts can capture it.
                    println!(
                        "{}",
                        response.get("id").and_then(Value::as_u64).unwrap_or(0)
                    );
                }
                Request::Status { .. } => {
                    let body = response
                        .get("jobs")
                        .or_else(|| response.get("job"))
                        .cloned()
                        .unwrap_or(Value::Null);
                    println!("{body}");
                }
                Request::Health => println!("{response}"),
                Request::Cancel { id } => {
                    let state = response.get("state").and_then(Value::as_str).unwrap_or("?");
                    println!("job {id}: {state}");
                }
                Request::Shutdown => println!("daemon shutting down"),
                Request::Tail { .. } => unreachable!("handled above"),
            }
        }
    }
}

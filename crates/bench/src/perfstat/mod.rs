//! The host performance observatory's harness half.
//!
//! The simulator measures *where host time goes* per run (see
//! `snake_sim::perfstat`); this module turns those measurements into
//! durable artifacts and decisions:
//!
//! * [`collect`] runs every `(benchmark, mechanism)` job `runs` times
//!   through the sweep supervisor (single worker, so samples never
//!   contend for cores) with [`GpuConfig::host_profile`] enabled and
//!   gathers one [`HostProfile`] per repetition;
//! * [`PerfReport`] serializes the samples plus a [`HostFingerprint`]
//!   (cpu count, rustc, git sha, cargo profile) into a
//!   schema-versioned `BENCH_<label>.json` via `snake_core::json`, and
//!   parses it back bit-exactly — every number is a `u64` lexeme;
//! * [`compare`] implements the noise-aware regression gate: medians
//!   are compared against an interquartile-range noise band, so a
//!   regression is only flagged when the delta clears both the
//!   relative threshold *and* the measured run-to-run noise.
//!
//! [`GpuConfig::host_profile`]: snake_sim::GpuConfig::host_profile

pub mod compare;

use std::path::Path;
use std::sync::Mutex;

use snake_core::json::{self, Value};
use snake_sim::perfstat::{Phase, PhaseStat};
use snake_sim::HostProfile;

use crate::runner::Harness;
use crate::supervise::{self, JobSpec, SweepConfig, SweepError};

pub use compare::{CompareConfig, CompareResult, CompareRow};

/// Version stamped into every `BENCH_*.json`; bump when the shape of
/// the document changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// Exit code for `repro --perf --compare` when the gate flags at least
/// one regression (0/3/4 are taken by the sweep supervisor).
pub const EXIT_PERF_REGRESSION: i32 = 5;

/// Identity of the machine and toolchain a perf report was measured
/// on. Compared loudly (a warning, not a failure) before gating: a
/// baseline from a different host is still *informative*, but its
/// noise band does not transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// Logical CPUs available to the process.
    pub cpus: u64,
    /// `rustc --version` line, or `"unknown"`.
    pub rustc: String,
    /// Short git revision of the working tree, or `"unknown"`.
    pub git_sha: String,
    /// `"debug"` or `"release"` (from `cfg!(debug_assertions)`).
    pub cargo_profile: String,
    /// Operating system the binary was compiled for.
    pub os: String,
}

impl HostFingerprint {
    /// Captures the current host's fingerprint. Never fails: fields
    /// that cannot be determined degrade to `"unknown"`.
    pub fn capture() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(0);
        let rustc = command_line("rustc", &["--version"]);
        let git_sha = command_line("git", &["rev-parse", "--short", "HEAD"]);
        let cargo_profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        HostFingerprint {
            cpus,
            rustc,
            git_sha,
            cargo_profile: cargo_profile.into(),
            os: std::env::consts::OS.into(),
        }
    }

    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("cpus".into(), Value::u64(self.cpus)),
            ("rustc".into(), Value::str(&self.rustc)),
            ("git_sha".into(), Value::str(&self.git_sha)),
            ("cargo_profile".into(), Value::str(&self.cargo_profile)),
            ("os".into(), Value::str(&self.os)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, PerfError> {
        Ok(HostFingerprint {
            cpus: field_u64(v, "cpus")?,
            rustc: field_str(v, "rustc")?,
            git_sha: field_str(v, "git_sha")?,
            cargo_profile: field_str(v, "cargo_profile")?,
            os: field_str(v, "os")?,
        })
    }
}

/// First stdout line of `cmd args...`, or `"unknown"`.
fn command_line(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| {
            String::from_utf8(o.stdout)
                .ok()
                .and_then(|s| s.lines().next().map(|l| l.trim().to_string()))
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// All repetitions of one `(benchmark, mechanism)` job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPerf {
    /// The job's manifest identity (`"<abbr>/<mechanism>"`).
    pub job: String,
    /// One [`HostProfile`] per repetition, in run order.
    pub samples: Vec<HostProfile>,
}

impl JobPerf {
    /// Wall-clock nanoseconds of every sample, in run order.
    pub fn wall_nanos(&self) -> Vec<u64> {
        self.samples.iter().map(|s| s.wall_nanos).collect()
    }

    /// Nanoseconds charged to `phase` in every sample, in run order.
    pub fn phase_nanos(&self, phase: Phase) -> Vec<u64> {
        self.samples.iter().map(|s| s.get(phase).nanos).collect()
    }
}

/// A complete perf measurement: fingerprint plus per-job samples —
/// the in-memory form of one `BENCH_<label>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Report label (`BENCH_<label>.json`).
    pub label: String,
    /// Repetitions per job this report was collected with.
    pub runs: u32,
    /// The measuring host.
    pub host: HostFingerprint,
    /// Per-job samples, in campaign order.
    pub jobs: Vec<JobPerf>,
}

/// A malformed or incompatible `BENCH_*.json`.
#[derive(Debug)]
pub enum PerfError {
    /// The file is not valid JSON.
    Json(json::ParseError),
    /// The document is JSON but not a perf report (the message names
    /// the missing or mistyped field).
    Shape(String),
    /// The report's schema version is not [`SCHEMA_VERSION`].
    Version(u64),
}

impl std::fmt::Display for PerfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfError::Json(e) => write!(f, "{e}"),
            PerfError::Shape(msg) => write!(f, "not a perf report: {msg}"),
            PerfError::Version(v) => write!(
                f,
                "perf report schema version {v} is not supported \
                 (this binary writes version {SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for PerfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PerfError::Json(e) => Some(e),
            _ => None,
        }
    }
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, PerfError> {
    v.get(key)
        .ok_or_else(|| PerfError::Shape(format!("missing field {key:?}")))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, PerfError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| PerfError::Shape(format!("field {key:?} is not a u64")))
}

fn field_str(v: &Value, key: &str) -> Result<String, PerfError> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| PerfError::Shape(format!("field {key:?} is not a string")))?
        .to_string())
}

fn field_arr<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], PerfError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| PerfError::Shape(format!("field {key:?} is not an array")))
}

pub(crate) fn profile_to_json(p: &HostProfile) -> Value {
    let phases = p
        .iter()
        .map(|(phase, stat)| {
            Value::Obj(vec![
                ("phase".into(), Value::str(phase.label())),
                ("nanos".into(), Value::u64(stat.nanos)),
                ("calls".into(), Value::u64(stat.calls)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("wall_nanos".into(), Value::u64(p.wall_nanos)),
        ("cycles".into(), Value::u64(p.cycles)),
        ("trace_events".into(), Value::u64(p.trace_events)),
        ("phases".into(), Value::Arr(phases)),
    ])
}

pub(crate) fn profile_from_json(v: &Value) -> Result<HostProfile, PerfError> {
    let mut phases = Vec::new();
    for entry in field_arr(v, "phases")? {
        let label = field_str(entry, "phase")?;
        let phase = Phase::from_label(&label)
            .ok_or_else(|| PerfError::Shape(format!("unknown phase {label:?}")))?;
        phases.push((
            phase,
            PhaseStat {
                nanos: field_u64(entry, "nanos")?,
                calls: field_u64(entry, "calls")?,
            },
        ));
    }
    Ok(HostProfile::from_parts(
        field_u64(v, "wall_nanos")?,
        field_u64(v, "cycles")?,
        field_u64(v, "trace_events")?,
        phases,
    ))
}

impl PerfReport {
    /// Renders the report as its canonical JSON document. Every number
    /// is an integer lexeme, so write → parse → write is bit-exact.
    pub fn to_json(&self) -> Value {
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                Value::Obj(vec![
                    ("job".into(), Value::str(&j.job)),
                    (
                        "samples".into(),
                        Value::Arr(j.samples.iter().map(profile_to_json).collect()),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema_version".into(), Value::u64(SCHEMA_VERSION)),
            ("label".into(), Value::str(&self.label)),
            ("runs".into(), Value::u64(u64::from(self.runs))),
            ("host".into(), self.host.to_json()),
            ("jobs".into(), Value::Arr(jobs)),
        ])
    }

    /// Parses a report back from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError`] when the document is malformed or carries
    /// an unsupported schema version.
    pub fn from_json(v: &Value) -> Result<Self, PerfError> {
        let version = field_u64(v, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(PerfError::Version(version));
        }
        let mut jobs = Vec::new();
        for j in field_arr(v, "jobs")? {
            let mut samples = Vec::new();
            for s in field_arr(j, "samples")? {
                samples.push(profile_from_json(s)?);
            }
            jobs.push(JobPerf {
                job: field_str(j, "job")?,
                samples,
            });
        }
        Ok(PerfReport {
            label: field_str(v, "label")?,
            runs: u32::try_from(field_u64(v, "runs")?)
                .map_err(|_| PerfError::Shape("field \"runs\" does not fit u32".into()))?,
            host: HostFingerprint::from_json(field(v, "host")?)?,
            jobs,
        })
    }

    /// Writes the report to `path` as one JSON document plus a
    /// trailing newline.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.to_json()))
    }

    /// Loads a report from `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error or the parse failure, stringly-merged so
    /// CLI callers get one diagnostic type.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        text.parse().map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The samples for `job`, if the report has them.
    pub fn job(&self, job: &str) -> Option<&JobPerf> {
        self.jobs.iter().find(|j| j.job == job)
    }
}

impl std::str::FromStr for PerfReport {
    type Err = PerfError;

    /// Parses a report from JSON text: invalid JSON, a malformed
    /// document, and an unsupported schema version all surface as
    /// [`PerfError`].
    fn from_str(text: &str) -> Result<Self, PerfError> {
        let v = json::parse(text).map_err(PerfError::Json)?;
        PerfReport::from_json(&v)
    }
}

/// A failed perf collection.
#[derive(Debug)]
pub enum CollectError {
    /// Setting up or running the supervised campaign failed.
    Sweep(SweepError),
    /// The campaign ran but not every job completed healthy — a perf
    /// report with quarantined or skipped jobs cannot be compared.
    Unhealthy {
        /// Jobs that completed.
        completed: usize,
        /// Jobs quarantined after exhausting their attempt budget.
        quarantined: usize,
        /// Jobs never started.
        skipped: usize,
    },
}

impl std::fmt::Display for CollectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectError::Sweep(e) => write!(f, "{e}"),
            CollectError::Unhealthy {
                completed,
                quarantined,
                skipped,
            } => write!(
                f,
                "perf collection needs every job healthy: \
                 {completed} completed, {quarantined} quarantined, {skipped} skipped"
            ),
        }
    }
}

impl std::error::Error for CollectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CollectError::Sweep(e) => Some(e),
            CollectError::Unhealthy { .. } => None,
        }
    }
}

impl From<SweepError> for CollectError {
    fn from(e: SweepError) -> Self {
        CollectError::Sweep(e)
    }
}

/// Collects a perf report: `runs` supervised passes over `jobs` with
/// host profiling enabled and a single worker (samples must not
/// contend with each other for cores — parallel workers would measure
/// the scheduler, not the simulator). A sandbox `executor` gives each
/// rep a fresh address space, so allocator state and heap layout from
/// one rep cannot contaminate the next; host profiles travel back over
/// the child protocol losslessly.
///
/// # Errors
///
/// Returns [`CollectError`] when the harness is invalid or any job
/// fails to complete (quarantined jobs cannot be compared, so a perf
/// run demands a fully healthy campaign).
pub fn collect(
    h: &Harness,
    jobs: &[JobSpec],
    runs: u32,
    label: &str,
    executor: std::sync::Arc<supervise::JobExecutor>,
) -> Result<PerfReport, CollectError> {
    let mut h = h.clone();
    h.cfg.host_profile = true;
    let cfg = SweepConfig {
        workers: 1,
        max_attempts: 1,
        executor: executor.clone(),
        ..SweepConfig::default()
    };
    // `run_campaign_with` only surfaces reports through `JobOutcome`,
    // which does not carry host profiles; capture them out-of-band.
    let captured: Mutex<Vec<(String, HostProfile)>> = Mutex::new(Vec::new());
    for _ in 0..runs {
        let result =
            supervise::run_campaign_with(&h, jobs, &cfg, None, false, |job, _attempt, _resume| {
                let ctx = supervise::ExecContext::default();
                let run = executor.run(&h, job, &ctx, &mut |_, _| {})?;
                if let crate::runner::JobRun::Finished(out) = &run {
                    if let Some(profile) = &out.host {
                        captured
                            .lock()
                            .expect("perf capture lock poisoned")
                            .push((job.id(), profile.clone()));
                    }
                }
                Ok(run)
            })?;
        let (completed, quarantined, skipped, suspended) = result.counts();
        if quarantined > 0 || skipped > 0 || suspended > 0 {
            return Err(CollectError::Unhealthy {
                completed,
                quarantined,
                skipped: skipped + suspended,
            });
        }
    }
    let captured = captured.into_inner().expect("perf capture lock poisoned");
    let job_perfs = jobs
        .iter()
        .map(|spec| {
            let id = spec.id();
            let samples = captured
                .iter()
                .filter(|(job, _)| *job == id)
                .map(|(_, p)| p.clone())
                .collect();
            JobPerf { job: id, samples }
        })
        .collect();
    Ok(PerfReport {
        label: label.to_string(),
        runs,
        host: HostFingerprint::capture(),
        jobs: job_perfs,
    })
}

/// Renders one job's median per-phase wall time as a printable table
/// (`repro --profile` / `pfdebug --profile`).
pub fn profile_table(job: &str, samples: &[HostProfile]) -> crate::report::Table {
    use crate::report::Table;
    let mut t = Table::new(
        format!("Host profile — {job}"),
        vec![
            "phase".into(),
            "ms".into(),
            "calls".into(),
            "ns/call".into(),
            "% wall".into(),
        ],
    );
    if samples.is_empty() {
        t.note("no samples collected");
        return t;
    }
    let wall = compare::median(&samples.iter().map(|s| s.wall_nanos).collect::<Vec<_>>());
    for phase in Phase::ALL {
        let nanos = compare::median(
            &samples
                .iter()
                .map(|s| s.get(phase).nanos)
                .collect::<Vec<_>>(),
        );
        let calls = compare::median(
            &samples
                .iter()
                .map(|s| s.get(phase).calls)
                .collect::<Vec<_>>(),
        );
        let ns_per_call = if calls > 0.0 { nanos / calls } else { 0.0 };
        let share = if wall > 0.0 {
            100.0 * nanos / wall
        } else {
            0.0
        };
        t.push_row(vec![
            phase.label().into(),
            format!("{:.3}", nanos / 1e6),
            format!("{calls:.0}"),
            format!("{ns_per_call:.0}"),
            format!("{share:.1}"),
        ]);
    }
    let accounted: f64 = Phase::ALL
        .iter()
        .map(|&p| compare::median(&samples.iter().map(|s| s.get(p).nanos).collect::<Vec<_>>()))
        .sum();
    t.push_row(vec![
        "(unaccounted)".into(),
        format!("{:.3}", (wall - accounted).max(0.0) / 1e6),
        "-".into(),
        "-".into(),
        format!(
            "{:.1}",
            if wall > 0.0 {
                100.0 * (wall - accounted).max(0.0) / wall
            } else {
                0.0
            }
        ),
    ]);
    let sample = &samples[samples.len() / 2];
    t.note(format!(
        "median of {} run(s); wall {:.3} ms, {:.0} cycles/s, {:.0} trace events/s",
        samples.len(),
        wall / 1e6,
        sample.cycles_per_sec(),
        sample.events_per_sec()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn sample_profile(scale: u64) -> HostProfile {
        HostProfile::from_parts(
            1_000_000 * scale,
            5_000,
            42,
            Phase::ALL.iter().enumerate().map(|(i, &p)| {
                (
                    p,
                    PhaseStat {
                        nanos: (i as u64 + 1) * 1_000 * scale,
                        calls: (i as u64 + 1) * 10,
                    },
                )
            }),
        )
    }

    fn sample_report() -> PerfReport {
        PerfReport {
            label: "unit".into(),
            runs: 2,
            host: HostFingerprint {
                cpus: 8,
                rustc: "rustc 1.0".into(),
                git_sha: "abc1234".into(),
                cargo_profile: "debug".into(),
                os: "linux".into(),
            },
            jobs: vec![JobPerf {
                job: "LPS/snake".into(),
                samples: vec![sample_profile(1), sample_profile(2)],
            }],
        }
    }

    #[test]
    fn report_round_trips_bit_exact() {
        let report = sample_report();
        let text = report.to_json().to_string();
        let parsed = PerfReport::from_str(&text).unwrap();
        assert_eq!(parsed, report);
        // Bit-exact: write -> parse -> write reproduces the bytes.
        assert_eq!(parsed.to_json().to_string(), text);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut v = sample_report().to_json();
        if let Value::Obj(entries) = &mut v {
            entries[0].1 = Value::u64(99);
        }
        match PerfReport::from_json(&v) {
            Err(PerfError::Version(99)) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_name_the_field() {
        let err = PerfReport::from_str("{\"schema_version\":1}").unwrap_err();
        assert!(err.to_string().contains("jobs"), "{err}");
        let err = PerfReport::from_str("not json").unwrap_err();
        assert!(matches!(err, PerfError::Json(_)));
    }

    #[test]
    fn fingerprint_capture_never_fails() {
        let fp = HostFingerprint::capture();
        assert!(!fp.os.is_empty());
        assert!(!fp.cargo_profile.is_empty());
        // rustc/git may be missing in a stripped container; the field
        // degrades to "unknown" rather than erroring.
        assert!(!fp.rustc.is_empty());
        assert!(!fp.git_sha.is_empty());
    }

    #[test]
    fn profile_table_lists_every_phase() {
        let t = profile_table("LPS/snake", &[sample_profile(1)]);
        let rendered = t.to_string();
        for phase in Phase::ALL {
            assert!(rendered.contains(phase.label()), "missing {phase}");
        }
        assert!(rendered.contains("(unaccounted)"));
    }
}

//! The noise-aware regression comparator.
//!
//! Host wall-time is noisy — frequency scaling, page-cache state, and
//! sibling processes all move it — so comparing two single numbers
//! with a fixed threshold either misses real regressions (threshold
//! too loose) or cries wolf (too tight). The gate here flags a
//! regression only when the median delta clears **three** bars at
//! once:
//!
//! 1. relative: `delta > rel_threshold × baseline_median`;
//! 2. noise: `delta > noise_mult × (baseline_IQR + current_IQR)` —
//!    the measured run-to-run spread of *both* reports;
//! 3. absolute: `delta > min_delta_ns` — microsecond jitter on a
//!    microsecond phase is never a finding.
//!
//! All bars use strict `>`: a delta exactly at a threshold passes.
//! Single-sample reports have an IQR of zero, so the gate degrades to
//! a plain relative-plus-floor comparison (exactly what the legacy
//! `pfdebug --overhead-guard` wall-clock check was).

use crate::report::Table;

use super::{JobPerf, PerfReport};
use snake_sim::perfstat::Phase;

/// Gate thresholds. The defaults suit CI smoke runs: 10% relative,
/// one full noise band, and a 10 µs absolute floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Relative slowdown bar (0.10 = 10% over the baseline median).
    pub rel_threshold: f64,
    /// Noise bar multiplier on `base_iqr + cur_iqr`.
    pub noise_mult: f64,
    /// Absolute floor in nanoseconds; deltas at or under it never
    /// flag, no matter how large relatively.
    pub min_delta_ns: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            rel_threshold: 0.10,
            noise_mult: 1.0,
            min_delta_ns: 10_000.0,
        }
    }
}

/// The interpolated `q`-quantile (0 ≤ q ≤ 1) of `sorted` (ascending).
fn quantile(sorted: &[u64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0] as f64,
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
        }
    }
}

/// Median of `samples` (interpolated for even counts; 0 when empty).
pub fn median(samples: &[u64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    quantile(&sorted, 0.5)
}

/// `(median, interquartile range)` of `samples`. The IQR of fewer
/// than two samples is zero — no spread was observed.
pub fn median_iqr(samples: &[u64]) -> (f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let med = quantile(&sorted, 0.5);
    if sorted.len() < 2 {
        return (med, 0.0);
    }
    let iqr = quantile(&sorted, 0.75) - quantile(&sorted, 0.25);
    (med, iqr)
}

/// The core gate predicate: is `cur` a regression over `base`?
///
/// Strict `>` on every bar: a delta exactly at the relative threshold,
/// exactly at the noise band, or exactly at the absolute floor does
/// **not** flag.
pub fn is_regression(
    base_med: f64,
    base_iqr: f64,
    cur_med: f64,
    cur_iqr: f64,
    cfg: &CompareConfig,
) -> bool {
    let delta = cur_med - base_med;
    delta > cfg.rel_threshold * base_med
        && delta > cfg.noise_mult * (base_iqr + cur_iqr)
        && delta > cfg.min_delta_ns
}

/// One compared metric: a job's wall time or one of its phases.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Job id (`"<abbr>/<mechanism>"`).
    pub job: String,
    /// `"wall"` or a phase label.
    pub metric: String,
    /// Baseline median, nanoseconds.
    pub base_med: f64,
    /// Baseline interquartile range, nanoseconds.
    pub base_iqr: f64,
    /// Current median, nanoseconds.
    pub cur_med: f64,
    /// Current interquartile range, nanoseconds.
    pub cur_iqr: f64,
    /// `true` when the gate flags this metric.
    pub regressed: bool,
}

impl CompareRow {
    /// Signed delta of the medians, nanoseconds.
    pub fn delta(&self) -> f64 {
        self.cur_med - self.base_med
    }

    /// Relative delta against the baseline median (0 when the
    /// baseline is zero).
    pub fn rel_delta(&self) -> f64 {
        if self.base_med > 0.0 {
            self.delta() / self.base_med
        } else {
            0.0
        }
    }
}

/// The comparator's verdict over two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareResult {
    /// One row per compared metric, campaign order, wall first.
    pub rows: Vec<CompareRow>,
    /// Jobs present in only one of the reports (compared jobs must
    /// match; these are reported, not failed on).
    pub unmatched: Vec<String>,
    /// Whether the two reports came from matching host fingerprints.
    pub same_host: bool,
}

impl CompareResult {
    /// Rows the gate flagged.
    pub fn regressions(&self) -> impl Iterator<Item = &CompareRow> {
        self.rows.iter().filter(|r| r.regressed)
    }

    /// `true` when no metric regressed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| !r.regressed)
    }

    /// Renders the verdict as a printable table: medians in
    /// milliseconds with their noise bands, the relative delta, and a
    /// verdict column.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Perf comparison (median ± IQR, ms)",
            vec![
                "job".into(),
                "metric".into(),
                "baseline".into(),
                "current".into(),
                "delta".into(),
                "verdict".into(),
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.job.clone(),
                r.metric.clone(),
                format!("{:.3} ±{:.3}", r.base_med / 1e6, r.base_iqr / 1e6),
                format!("{:.3} ±{:.3}", r.cur_med / 1e6, r.cur_iqr / 1e6),
                format!("{:+.1}%", r.rel_delta() * 100.0),
                if r.regressed { "REGRESSED" } else { "ok" }.into(),
            ]);
        }
        if !self.same_host {
            t.note(
                "host fingerprints differ between baseline and current; \
                 the noise bands may not transfer",
            );
        }
        for job in &self.unmatched {
            t.note(format!("{job}: present in only one report, not compared"));
        }
        let flagged = self.regressions().count();
        if flagged > 0 {
            t.note(format!("{flagged} metric(s) regressed"));
        }
        t
    }
}

fn push_rows(rows: &mut Vec<CompareRow>, base: &JobPerf, cur: &JobPerf, cfg: &CompareConfig) {
    let mut push = |metric: &str, base_samples: Vec<u64>, cur_samples: Vec<u64>| {
        let (base_med, base_iqr) = median_iqr(&base_samples);
        let (cur_med, cur_iqr) = median_iqr(&cur_samples);
        rows.push(CompareRow {
            job: base.job.clone(),
            metric: metric.to_string(),
            base_med,
            base_iqr,
            cur_med,
            cur_iqr,
            regressed: is_regression(base_med, base_iqr, cur_med, cur_iqr, cfg),
        });
    };
    push("wall", base.wall_nanos(), cur.wall_nanos());
    for phase in Phase::ALL {
        push(
            phase.label(),
            base.phase_nanos(phase),
            cur.phase_nanos(phase),
        );
    }
}

/// Compares `cur` against `base` under `cfg`: per job, the total wall
/// time plus every phase.
pub fn compare(base: &PerfReport, cur: &PerfReport, cfg: &CompareConfig) -> CompareResult {
    let mut rows = Vec::new();
    let mut unmatched: Vec<String> = Vec::new();
    for cur_job in &cur.jobs {
        match base.job(&cur_job.job) {
            Some(base_job) => push_rows(&mut rows, base_job, cur_job, cfg),
            None => unmatched.push(cur_job.job.clone()),
        }
    }
    for base_job in &base.jobs {
        if cur.job(&base_job.job).is_none() {
            unmatched.push(base_job.job.clone());
        }
    }
    CompareResult {
        rows,
        unmatched,
        same_host: base.host == cur.host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfstat::{HostFingerprint, JobPerf};
    use snake_sim::perfstat::PhaseStat;
    use snake_sim::HostProfile;

    fn profile(wall: u64) -> HostProfile {
        HostProfile::from_parts(
            wall,
            100,
            0,
            [(
                Phase::MemPartition,
                PhaseStat {
                    nanos: wall / 2,
                    calls: 10,
                },
            )],
        )
    }

    fn report(label: &str, walls: &[u64]) -> PerfReport {
        PerfReport {
            label: label.into(),
            runs: walls.len() as u32,
            host: HostFingerprint {
                cpus: 4,
                rustc: "r".into(),
                git_sha: "g".into(),
                cargo_profile: "debug".into(),
                os: "linux".into(),
            },
            jobs: vec![JobPerf {
                job: "LPS/snake".into(),
                samples: walls.iter().map(|&w| profile(w)).collect(),
            }],
        }
    }

    fn strict() -> CompareConfig {
        // No absolute floor and no noise bar: isolates the relative
        // threshold for the exactness tests.
        CompareConfig {
            rel_threshold: 0.10,
            noise_mult: 0.0,
            min_delta_ns: 0.0,
        }
    }

    #[test]
    fn median_and_iqr_basics() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7]), 7.0);
        assert_eq!(median(&[1, 3]), 2.0);
        assert_eq!(median(&[3, 1, 2]), 2.0);
        let (med, iqr) = median_iqr(&[10, 20, 30, 40, 50]);
        assert_eq!(med, 30.0);
        assert_eq!(iqr, 20.0);
        let (_, iqr1) = median_iqr(&[42]);
        assert_eq!(iqr1, 0.0, "single sample has no spread");
    }

    #[test]
    fn zero_variance_baseline_gates_on_relative_threshold() {
        // All bars except relative disabled; identical samples have
        // IQR 0 so the noise bar contributes nothing even when on.
        let base = report("base", &[1_000_000, 1_000_000, 1_000_000]);
        let same = report("cur", &[1_000_000, 1_000_000, 1_000_000]);
        assert!(compare(&base, &same, &strict()).passed());
        let slow = report("cur", &[1_200_000, 1_200_000, 1_200_000]);
        let result = compare(&base, &slow, &strict());
        assert!(!result.passed());
        let wall = result.rows.iter().find(|r| r.metric == "wall").unwrap();
        assert!(wall.regressed);
    }

    #[test]
    fn regression_exactly_at_threshold_does_not_flag() {
        // Strict `>`: a delta of exactly rel_threshold x base passes.
        let base = report("base", &[1_000_000]);
        let at = report("cur", &[1_100_000]); // exactly +10%
        assert!(compare(&base, &at, &strict()).passed());
        let over = report("cur", &[1_100_001]); // one nanosecond over
        assert!(!compare(&base, &over, &strict()).passed());
    }

    #[test]
    fn single_sample_runs_compare_without_noise_band() {
        let base = report("base", &[1_000_000]);
        let cur = report("cur", &[1_500_000]);
        let cfg = CompareConfig {
            min_delta_ns: 0.0,
            ..CompareConfig::default()
        };
        // IQRs are both zero, so the default noise_mult of 1.0 gates
        // on the relative threshold alone.
        assert!(!compare(&base, &cur, &cfg).passed());
    }

    #[test]
    fn noise_band_suppresses_within_spread_deltas() {
        // +20% median shift, but the spread of each report is larger
        // than the shift: the noise bar must suppress the flag.
        let base = report("base", &[800_000, 1_000_000, 1_600_000]);
        let cur = report("cur", &[900_000, 1_200_000, 1_900_000]);
        let cfg = CompareConfig {
            rel_threshold: 0.10,
            noise_mult: 1.0,
            min_delta_ns: 0.0,
        };
        assert!(compare(&base, &cur, &cfg).passed());
        // With the noise bar off the same delta flags.
        assert!(!compare(&base, &cur, &strict()).passed());
    }

    #[test]
    fn absolute_floor_suppresses_tiny_deltas() {
        let base = report("base", &[10_000]);
        let cur = report("cur", &[19_000]); // +90% but only 9 us
        let cfg = CompareConfig::default(); // floor 10 us
        assert!(compare(&base, &cur, &cfg).passed());
    }

    #[test]
    fn improvements_never_flag() {
        let base = report("base", &[2_000_000]);
        let cur = report("cur", &[1_000_000]);
        let result = compare(&base, &cur, &strict());
        assert!(result.passed());
        let wall = result.rows.iter().find(|r| r.metric == "wall").unwrap();
        assert!(wall.rel_delta() < 0.0);
    }

    #[test]
    fn unmatched_jobs_are_reported_not_compared() {
        let base = report("base", &[1_000_000]);
        let mut cur = report("cur", &[1_000_000]);
        cur.jobs[0].job = "CP/snake".into();
        let result = compare(&base, &cur, &strict());
        assert!(result.rows.is_empty());
        assert_eq!(result.unmatched.len(), 2);
        assert!(result.passed(), "unmatched jobs are not failures");
    }

    #[test]
    fn table_renders_verdicts_and_notes() {
        let base = report("base", &[1_000_000]);
        let slow = report("cur", &[2_000_000]);
        let rendered = compare(&base, &slow, &strict()).table().to_string();
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.contains("wall"));
        assert!(rendered.contains("mem_partition"));
        assert!(rendered.contains("metric(s) regressed"));
    }
}

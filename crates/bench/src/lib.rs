//! # snake-bench
//!
//! The figure/table regeneration harness: one function per table and
//! figure of the paper's evaluation, each returning a printable
//! [`report::Table`] with the paper-reported value next to the
//! measured one. The `repro` binary exposes them as subcommands.
//!
//! ```no_run
//! use snake_bench::{figures, Harness};
//! use snake_core::PrefetcherKind;
//! # fn main() -> Result<(), snake_sim::SimError> {
//! let h = Harness::quick();
//! let matrix = figures::EvalMatrix::collect(&h, PrefetcherKind::all())?;
//! let table = figures::fig16_coverage(&matrix);
//! println!("{table}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod figures;
pub mod perfstat;
pub mod report;
pub mod runner;
pub mod serve;
pub mod supervise;

pub use runner::Harness;

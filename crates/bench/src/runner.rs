//! Shared run harness: configuration, simulation, and report rows.

use snake_core::{MechanismReport, PrefetcherKind};
use snake_sim::{
    EnergyModel, Gpu, GpuConfig, HostProfile, KernelTrace, Prefetcher, SimError, SimOutcome, SmId,
    StopReason,
};
use snake_workloads::{Benchmark, WorkloadSize};

/// The experiment harness: one GPU configuration, one workload size,
/// one energy model, shared by every figure.
#[derive(Debug, Clone)]
pub struct Harness {
    /// GPU configuration (scaled V100 by default).
    pub cfg: GpuConfig,
    /// Workload scale.
    pub size: WorkloadSize,
    /// Energy model.
    pub energy: EnergyModel,
}

/// A finished supervised run: the report row plus why the simulation
/// stopped, so the sweep supervisor can distinguish clean completion
/// from budget truncation or deadlock without re-deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// The metrics row for the run.
    pub report: MechanismReport,
    /// Why the simulation stopped.
    pub stop: StopReason,
    /// Host-side per-phase timing, present when the harness config set
    /// [`GpuConfig::host_profile`] (the perf observatory's input).
    pub host: Option<HostProfile>,
}

impl Harness {
    /// The standard harness used for the reported numbers: a 2-SM
    /// scaled V100 and the standard workload size.
    pub fn standard() -> Self {
        Harness {
            cfg: GpuConfig::scaled(2),
            size: WorkloadSize::standard(),
            energy: EnergyModel::volta_like(),
        }
    }

    /// A fast harness for tests and smoke runs.
    pub fn quick() -> Self {
        Harness {
            cfg: GpuConfig::scaled(1),
            size: WorkloadSize {
                warps_per_cta: 4,
                ctas: 2,
                iters: 48,
                seed: 0xC0FFEE,
            },
            energy: EnergyModel::volta_like(),
        }
    }

    /// Checks the harness configuration without running anything, so
    /// campaign drivers can fail fast once instead of per job.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SimError`] when the GPU configuration
    /// is invalid.
    pub fn validate(&self) -> Result<(), SimError> {
        self.cfg.validate().map_err(SimError::from)
    }

    /// Runs one benchmark under one mechanism and reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn run(&self, bench: Benchmark, kind: PrefetcherKind) -> Result<MechanismReport, SimError> {
        let kernel = bench.build(&self.size);
        self.run_kernel(&kernel, kind)
    }

    /// Runs one benchmark under one mechanism, keeping the stop reason
    /// alongside the report (the sweep supervisor's entry point).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn run_job(&self, bench: Benchmark, kind: PrefetcherKind) -> Result<RunOutput, SimError> {
        let kernel = bench.build(&self.size);
        let warps = self.cfg.max_warps_per_sm;
        let outcome = self.simulate(&kernel, |_| kind.build(warps))?;
        let report = MechanismReport::from_outcome(
            kind.name(),
            kernel.name(),
            &outcome,
            &self.cfg,
            &self.energy,
            kind.has_hardware(),
        );
        Ok(RunOutput {
            report,
            stop: outcome.stop,
            host: outcome.host,
        })
    }

    /// Runs an arbitrary kernel under one registry mechanism.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn run_kernel(
        &self,
        kernel: &KernelTrace,
        kind: PrefetcherKind,
    ) -> Result<MechanismReport, SimError> {
        let warps = self.cfg.max_warps_per_sm;
        let outcome = self.simulate(kernel, |_| kind.build(warps))?;
        Ok(MechanismReport::from_outcome(
            kind.name(),
            kernel.name(),
            &outcome,
            &self.cfg,
            &self.energy,
            kind.has_hardware(),
        ))
    }

    /// Runs an arbitrary kernel with a custom prefetcher factory
    /// (parameter sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn run_custom(
        &self,
        kernel: &KernelTrace,
        name: &str,
        mk: impl FnMut(SmId) -> Box<dyn Prefetcher>,
    ) -> Result<MechanismReport, SimError> {
        let outcome = self.simulate(kernel, mk)?;
        Ok(MechanismReport::from_outcome(
            name,
            kernel.name(),
            &outcome,
            &self.cfg,
            &self.energy,
            true,
        ))
    }

    /// Builds and runs the GPU, surfacing configuration problems as a
    /// typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn simulate(
        &self,
        kernel: &KernelTrace,
        mk: impl FnMut(SmId) -> Box<dyn Prefetcher>,
    ) -> Result<SimOutcome, SimError> {
        let mut gpu = Gpu::new(self.cfg.clone(), kernel.clone(), mk)?;
        Ok(gpu.run())
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_runs_every_benchmark_baseline() {
        let h = Harness::quick();
        for &b in Benchmark::all() {
            let r = h.run(b, PrefetcherKind::Baseline).unwrap();
            assert!(r.ipc > 0.0, "{b}: ipc {}", r.ipc);
            assert!(r.cycles > 0, "{b}");
        }
    }

    #[test]
    fn snake_beats_baseline_on_lps() {
        let h = Harness::quick();
        let base = h.run(Benchmark::Lps, PrefetcherKind::Baseline).unwrap();
        let snake = h.run(Benchmark::Lps, PrefetcherKind::Snake).unwrap();
        assert!(
            snake.speedup_over(&base) > 1.02,
            "snake {} vs baseline {} IPC (speedup {:.3})",
            snake.ipc,
            base.ipc,
            snake.speedup_over(&base)
        );
        assert!(snake.coverage > 0.3, "snake coverage {}", snake.coverage);
    }

    #[test]
    fn custom_factory_is_usable() {
        let h = Harness::quick();
        let kernel = Benchmark::Lib.build(&h.size);
        let r = h
            .run_custom(&kernel, "null-custom", |_| {
                Box::new(snake_sim::NullPrefetcher)
            })
            .unwrap();
        assert_eq!(r.mechanism, "null-custom");
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn invalid_config_surfaces_as_sim_error() {
        let mut h = Harness::quick();
        h.cfg.mshr_entries = 0;
        assert!(h.validate().is_err());
        let err = h.run(Benchmark::Lps, PrefetcherKind::Baseline).unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
        assert!(h.run_job(Benchmark::Lps, PrefetcherKind::Baseline).is_err());
    }

    #[test]
    fn run_job_reports_stop_reason() {
        let mut h = Harness::quick();
        let full = h.run_job(Benchmark::Lps, PrefetcherKind::Baseline).unwrap();
        assert_eq!(full.stop, StopReason::Completed);

        h.cfg.cycle_budget = Some(snake_sim::Cycle(50));
        let cut = h.run_job(Benchmark::Lps, PrefetcherKind::Baseline).unwrap();
        assert_eq!(cut.stop, StopReason::BudgetExceeded { budget: 50 });
        assert!(cut.report.cycles <= 50);
    }
}

//! Shared run harness: configuration, simulation, and report rows.

use snake_core::{MechanismReport, PrefetcherKind};
use snake_sim::{EnergyModel, Gpu, GpuConfig, KernelTrace, Prefetcher, SimOutcome, SmId};
use snake_workloads::{Benchmark, WorkloadSize};

/// The experiment harness: one GPU configuration, one workload size,
/// one energy model, shared by every figure.
#[derive(Debug, Clone)]
pub struct Harness {
    /// GPU configuration (scaled V100 by default).
    pub cfg: GpuConfig,
    /// Workload scale.
    pub size: WorkloadSize,
    /// Energy model.
    pub energy: EnergyModel,
}

impl Harness {
    /// The standard harness used for the reported numbers: a 2-SM
    /// scaled V100 and the standard workload size.
    pub fn standard() -> Self {
        Harness {
            cfg: GpuConfig::scaled(2),
            size: WorkloadSize::standard(),
            energy: EnergyModel::volta_like(),
        }
    }

    /// A fast harness for tests and smoke runs.
    pub fn quick() -> Self {
        Harness {
            cfg: GpuConfig::scaled(1),
            size: WorkloadSize {
                warps_per_cta: 4,
                ctas: 2,
                iters: 48,
                seed: 0xC0FFEE,
            },
            energy: EnergyModel::volta_like(),
        }
    }

    /// Runs one benchmark under one mechanism and reports.
    pub fn run(&self, bench: Benchmark, kind: PrefetcherKind) -> MechanismReport {
        let kernel = bench.build(&self.size);
        self.run_kernel(&kernel, kind)
    }

    /// Runs an arbitrary kernel under one registry mechanism.
    pub fn run_kernel(&self, kernel: &KernelTrace, kind: PrefetcherKind) -> MechanismReport {
        let warps = self.cfg.max_warps_per_sm;
        let outcome = self.simulate(kernel, |_| kind.build(warps));
        MechanismReport::from_outcome(
            kind.name(),
            kernel.name(),
            &outcome,
            &self.cfg,
            &self.energy,
            kind.has_hardware(),
        )
    }

    /// Runs an arbitrary kernel with a custom prefetcher factory
    /// (parameter sweeps).
    pub fn run_custom(
        &self,
        kernel: &KernelTrace,
        name: &str,
        mk: impl FnMut(SmId) -> Box<dyn Prefetcher>,
    ) -> MechanismReport {
        let outcome = self.simulate(kernel, mk);
        MechanismReport::from_outcome(name, kernel.name(), &outcome, &self.cfg, &self.energy, true)
    }

    fn simulate(
        &self,
        kernel: &KernelTrace,
        mk: impl FnMut(SmId) -> Box<dyn Prefetcher>,
    ) -> SimOutcome {
        let mut gpu =
            Gpu::new(self.cfg.clone(), kernel.clone(), mk).expect("harness configuration is valid");
        gpu.run()
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_runs_every_benchmark_baseline() {
        let h = Harness::quick();
        for &b in Benchmark::all() {
            let r = h.run(b, PrefetcherKind::Baseline);
            assert!(r.ipc > 0.0, "{b}: ipc {}", r.ipc);
            assert!(r.cycles > 0, "{b}");
        }
    }

    #[test]
    fn snake_beats_baseline_on_lps() {
        let h = Harness::quick();
        let base = h.run(Benchmark::Lps, PrefetcherKind::Baseline);
        let snake = h.run(Benchmark::Lps, PrefetcherKind::Snake);
        assert!(
            snake.speedup_over(&base) > 1.02,
            "snake {} vs baseline {} IPC (speedup {:.3})",
            snake.ipc,
            base.ipc,
            snake.speedup_over(&base)
        );
        assert!(snake.coverage > 0.3, "snake coverage {}", snake.coverage);
    }

    #[test]
    fn custom_factory_is_usable() {
        let h = Harness::quick();
        let kernel = Benchmark::Lib.build(&h.size);
        let r = h.run_custom(&kernel, "null-custom", |_| {
            Box::new(snake_sim::NullPrefetcher)
        });
        assert_eq!(r.mechanism, "null-custom");
        assert!(r.ipc > 0.0);
    }
}

//! Shared run harness: configuration, simulation, and report rows.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use snake_core::{MechanismReport, PrefetcherKind};
use snake_sim::snapshot::Checkpoint;
use snake_sim::{
    Cycle, EnergyModel, Gpu, GpuConfig, HostProfile, KernelTrace, Prefetcher, SimError, SimOutcome,
    SmId, StopReason, TelemetryRing,
};
use snake_workloads::{Benchmark, WorkloadSize};

/// The experiment harness: one GPU configuration, one workload size,
/// one energy model, shared by every figure.
#[derive(Debug, Clone)]
pub struct Harness {
    /// GPU configuration (scaled V100 by default).
    pub cfg: GpuConfig,
    /// Workload scale.
    pub size: WorkloadSize,
    /// Energy model.
    pub energy: EnergyModel,
}

/// A finished supervised run: the report row plus why the simulation
/// stopped, so the sweep supervisor can distinguish clean completion
/// from budget truncation or deadlock without re-deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// The metrics row for the run.
    pub report: MechanismReport,
    /// Why the simulation stopped.
    pub stop: StopReason,
    /// Host-side per-phase timing, present when the harness config set
    /// [`GpuConfig::host_profile`] (the perf observatory's input).
    pub host: Option<HostProfile>,
}

/// What [`Harness::run_job_managed`] produced: either a finished run,
/// or a mid-simulation suspension whose state is now durable in a
/// checkpoint file (resume it by passing the path back as
/// `resume_from`).
#[derive(Debug, Clone, PartialEq)]
pub enum JobRun {
    /// The simulation ran (or resumed) to its stop reason.
    Finished(Box<RunOutput>),
    /// The suspend policy fired; the complete simulator state was
    /// checkpointed atomically before returning.
    Suspended {
        /// Cycle the simulation was suspended at.
        cycle: u64,
        /// Path of the checkpoint artifact that was written.
        checkpoint: String,
    },
    /// The job was cancelled before or during its simulation (daemon
    /// cancellation, see [`Harness::run_job_live`]); no report was
    /// produced and no state was saved. The supervisor records it as
    /// skipped and never retries it.
    Cancelled,
}

impl Harness {
    /// The standard harness used for the reported numbers: a 2-SM
    /// scaled V100 and the standard workload size.
    pub fn standard() -> Self {
        Harness {
            cfg: GpuConfig::scaled(2),
            size: WorkloadSize::standard(),
            energy: EnergyModel::volta_like(),
        }
    }

    /// A fast harness for tests and smoke runs.
    pub fn quick() -> Self {
        Harness {
            cfg: GpuConfig::scaled(1),
            size: WorkloadSize {
                warps_per_cta: 4,
                ctas: 2,
                iters: 48,
                seed: 0xC0FFEE,
            },
            energy: EnergyModel::volta_like(),
        }
    }

    /// Checks the harness configuration without running anything, so
    /// campaign drivers can fail fast once instead of per job.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SimError`] when the GPU configuration
    /// is invalid.
    pub fn validate(&self) -> Result<(), SimError> {
        self.cfg.validate().map_err(SimError::from)
    }

    /// Runs one benchmark under one mechanism and reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn run(&self, bench: Benchmark, kind: PrefetcherKind) -> Result<MechanismReport, SimError> {
        let kernel = bench.build(&self.size);
        self.run_kernel(&kernel, kind)
    }

    /// Runs one benchmark under one mechanism, keeping the stop reason
    /// alongside the report (the sweep supervisor's entry point).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn run_job(&self, bench: Benchmark, kind: PrefetcherKind) -> Result<RunOutput, SimError> {
        let kernel = bench.build(&self.size);
        let warps = self.cfg.max_warps_per_sm;
        let outcome = self.simulate(&kernel, |_| kind.build(warps))?;
        Ok(self.job_output(kind, &kernel, outcome))
    }

    /// Runs one job with mid-simulation suspend/resume support — the
    /// supervisor's preemption entry point.
    ///
    /// * `resume_from` — restore the complete simulator state from a
    ///   checkpoint written by an earlier suspension, then continue.
    /// * `suspend` — polled once per simulated cycle; returning `true`
    ///   checkpoints the state atomically to `checkpoint_to` and
    ///   returns [`JobRun::Suspended`]. With `checkpoint_to = None`
    ///   suspension is disabled and the policy is never consulted (the
    ///   run is indistinguishable from [`Harness::run_job`]).
    ///
    /// Restoring is fingerprint-checked: a checkpoint from a different
    /// configuration, kernel, or mechanism is a typed error, and the
    /// device is left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for an invalid configuration or an
    /// unusable / mismatched checkpoint.
    pub fn run_job_managed(
        &self,
        bench: Benchmark,
        kind: PrefetcherKind,
        resume_from: Option<&Path>,
        checkpoint_to: Option<&Path>,
        mut suspend: impl FnMut(Cycle) -> bool,
    ) -> Result<JobRun, SimError> {
        let kernel = bench.build(&self.size);
        let warps = self.cfg.max_warps_per_sm;
        let mut gpu = Gpu::new(self.cfg.clone(), kernel.clone(), |_| kind.build(warps))?;
        if let Some(path) = resume_from {
            let ckpt = Checkpoint::load(path)?;
            gpu.restore(&ckpt)?;
        }
        let Some(ckpt_path) = checkpoint_to else {
            let out = self.job_output(kind, &kernel, gpu.run());
            return Ok(JobRun::Finished(Box::new(out)));
        };
        let mut at = Cycle::ZERO;
        match gpu.run_interruptible(|c| {
            at = c;
            suspend(c)
        }) {
            Some(outcome) => Ok(JobRun::Finished(Box::new(
                self.job_output(kind, &kernel, outcome),
            ))),
            None => {
                gpu.checkpoint().write_atomic(ckpt_path)?;
                Ok(JobRun::Suspended {
                    cycle: at.0,
                    checkpoint: ckpt_path.display().to_string(),
                })
            }
        }
    }

    /// Runs one job while publishing live telemetry: per-window metric
    /// rows (and, with `include_events`, the full trace-event stream)
    /// are pushed into `ring` as the simulation advances — the
    /// `snaked` daemon's entry point. `cancel` is polled once per
    /// cycle; setting it abandons the run and returns
    /// [`JobRun::Cancelled`].
    ///
    /// With no ring subscribers the push path never constructs a
    /// record, so the outcome (and the report built from it) is
    /// bit-identical to [`Harness::run_job`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn run_job_live(
        &self,
        bench: Benchmark,
        kind: PrefetcherKind,
        ring: &TelemetryRing,
        include_events: bool,
        cancel: &AtomicBool,
    ) -> Result<JobRun, SimError> {
        if cancel.load(Ordering::Relaxed) {
            return Ok(JobRun::Cancelled);
        }
        let kernel = bench.build(&self.size);
        let warps = self.cfg.max_warps_per_sm;
        let mut gpu = Gpu::new(self.cfg.clone(), kernel.clone(), |_| kind.build(warps))?;
        gpu.attach_telemetry(ring, include_events);
        match gpu.run_interruptible(|_| cancel.load(Ordering::Relaxed)) {
            Some(outcome) => Ok(JobRun::Finished(Box::new(
                self.job_output(kind, &kernel, outcome),
            ))),
            None => Ok(JobRun::Cancelled),
        }
    }

    /// Runs one job with the full daemon service surface: live
    /// telemetry ([`Harness::run_job_live`]) plus checkpoint/resume
    /// and deadline suspension ([`Harness::run_job_managed`]) in a
    /// single pass — the `snaked` scheduler's entry point.
    ///
    /// * `resume_from` — restore the complete simulator state from an
    ///   earlier checkpoint, then continue.
    /// * `checkpoint_to` — where periodic mid-simulation checkpoints
    ///   go, every [`GpuConfig::checkpoint_every`] cycles (both must
    ///   be set for any checkpointing to happen); `on_checkpoint(cycle,
    ///   bytes)` fires after each write is durable, so the caller can
    ///   journal the artifact before anything else can crash.
    /// * `deadline` — a wall-clock slice budget: once it passes (and
    ///   checkpointing is enabled), the run suspends at the next check,
    ///   writes a final checkpoint, and returns [`JobRun::Suspended`].
    /// * `cancel` — polled once per cycle; cancellation *wins* every
    ///   race with the deadline: a run that stops because the flag was
    ///   set returns [`JobRun::Cancelled`] and writes no final
    ///   checkpoint, so a cancelled job never leaves a fresh resume
    ///   artifact behind.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for an invalid configuration, an unusable
    /// or mismatched resume checkpoint, or a failed checkpoint write.
    #[allow(clippy::too_many_arguments)]
    pub fn run_job_serviced(
        &self,
        bench: Benchmark,
        kind: PrefetcherKind,
        ring: &TelemetryRing,
        include_events: bool,
        cancel: &AtomicBool,
        resume_from: Option<&Path>,
        checkpoint_to: Option<&Path>,
        deadline: Option<std::time::Instant>,
        mut on_checkpoint: impl FnMut(u64, u64),
    ) -> Result<JobRun, SimError> {
        if cancel.load(Ordering::Relaxed) {
            return Ok(JobRun::Cancelled);
        }
        let kernel = bench.build(&self.size);
        let warps = self.cfg.max_warps_per_sm;
        let mut gpu = Gpu::new(self.cfg.clone(), kernel.clone(), |_| kind.build(warps))?;
        if let Some(path) = resume_from {
            let ckpt = Checkpoint::load(path)?;
            gpu.restore(&ckpt)?;
        }
        gpu.attach_telemetry(ring, include_events);
        let ckpt = match (checkpoint_to, self.cfg.checkpoint_every) {
            (Some(path), Some(every)) => Some((path, every)),
            _ => None,
        };
        let can_suspend = ckpt.is_some() && deadline.is_some();
        let mut at = Cycle::ZERO;
        let mut hit_deadline = false;
        let outcome = gpu.run_serviced(ckpt, &mut on_checkpoint, |c| {
            at = c;
            if cancel.load(Ordering::Relaxed) {
                return true;
            }
            // The deadline only matters at millisecond scale; checking
            // the clock every cycle would dominate the simulation.
            if can_suspend && c.0.is_multiple_of(1024) {
                if let Some(dl) = deadline {
                    if std::time::Instant::now() >= dl {
                        hit_deadline = true;
                        return true;
                    }
                }
            }
            false
        })?;
        match outcome {
            Some(outcome) => Ok(JobRun::Finished(Box::new(
                self.job_output(kind, &kernel, outcome),
            ))),
            None if hit_deadline && !cancel.load(Ordering::Relaxed) => {
                let (path, _) = ckpt.expect("deadline suspension requires checkpointing");
                let bytes = gpu.checkpoint().write_atomic(path)?;
                on_checkpoint(at.0, bytes);
                Ok(JobRun::Suspended {
                    cycle: at.0,
                    checkpoint: path.display().to_string(),
                })
            }
            None => Ok(JobRun::Cancelled),
        }
    }

    /// Assembles the supervised-run output for a finished simulation.
    fn job_output(
        &self,
        kind: PrefetcherKind,
        kernel: &KernelTrace,
        outcome: SimOutcome,
    ) -> RunOutput {
        let report = MechanismReport::from_outcome(
            kind.name(),
            kernel.name(),
            &outcome,
            &self.cfg,
            &self.energy,
            kind.has_hardware(),
        );
        RunOutput {
            report,
            stop: outcome.stop,
            host: outcome.host,
        }
    }

    /// Runs an arbitrary kernel under one registry mechanism.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn run_kernel(
        &self,
        kernel: &KernelTrace,
        kind: PrefetcherKind,
    ) -> Result<MechanismReport, SimError> {
        let warps = self.cfg.max_warps_per_sm;
        let outcome = self.simulate(kernel, |_| kind.build(warps))?;
        Ok(MechanismReport::from_outcome(
            kind.name(),
            kernel.name(),
            &outcome,
            &self.cfg,
            &self.energy,
            kind.has_hardware(),
        ))
    }

    /// Runs an arbitrary kernel with a custom prefetcher factory
    /// (parameter sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn run_custom(
        &self,
        kernel: &KernelTrace,
        name: &str,
        mk: impl FnMut(SmId) -> Box<dyn Prefetcher>,
    ) -> Result<MechanismReport, SimError> {
        let outcome = self.simulate(kernel, mk)?;
        Ok(MechanismReport::from_outcome(
            name,
            kernel.name(),
            &outcome,
            &self.cfg,
            &self.energy,
            true,
        ))
    }

    /// Builds and runs the GPU, surfacing configuration problems as a
    /// typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the harness configuration is invalid.
    pub fn simulate(
        &self,
        kernel: &KernelTrace,
        mk: impl FnMut(SmId) -> Box<dyn Prefetcher>,
    ) -> Result<SimOutcome, SimError> {
        let mut gpu = Gpu::new(self.cfg.clone(), kernel.clone(), mk)?;
        Ok(gpu.run())
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_runs_every_benchmark_baseline() {
        let h = Harness::quick();
        for &b in Benchmark::all() {
            let r = h.run(b, PrefetcherKind::Baseline).unwrap();
            assert!(r.ipc > 0.0, "{b}: ipc {}", r.ipc);
            assert!(r.cycles > 0, "{b}");
        }
    }

    #[test]
    fn snake_beats_baseline_on_lps() {
        let h = Harness::quick();
        let base = h.run(Benchmark::Lps, PrefetcherKind::Baseline).unwrap();
        let snake = h.run(Benchmark::Lps, PrefetcherKind::Snake).unwrap();
        assert!(
            snake.speedup_over(&base) > 1.02,
            "snake {} vs baseline {} IPC (speedup {:.3})",
            snake.ipc,
            base.ipc,
            snake.speedup_over(&base)
        );
        assert!(snake.coverage > 0.3, "snake coverage {}", snake.coverage);
    }

    #[test]
    fn custom_factory_is_usable() {
        let h = Harness::quick();
        let kernel = Benchmark::Lib.build(&h.size);
        let r = h
            .run_custom(&kernel, "null-custom", |_| {
                Box::new(snake_sim::NullPrefetcher)
            })
            .unwrap();
        assert_eq!(r.mechanism, "null-custom");
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn invalid_config_surfaces_as_sim_error() {
        let mut h = Harness::quick();
        h.cfg.mshr_entries = 0;
        assert!(h.validate().is_err());
        let err = h.run(Benchmark::Lps, PrefetcherKind::Baseline).unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
        assert!(h.run_job(Benchmark::Lps, PrefetcherKind::Baseline).is_err());
    }

    #[test]
    fn suspended_then_resumed_job_matches_uninterrupted() {
        let h = Harness::quick();
        let full = h.run_job(Benchmark::Lps, PrefetcherKind::Snake).unwrap();
        let dir = std::env::temp_dir().join(format!("snake-runner-suspend-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("job.ckpt");
        let run = h
            .run_job_managed(
                Benchmark::Lps,
                PrefetcherKind::Snake,
                None,
                Some(&ckpt),
                |c| c.0 >= 200,
            )
            .unwrap();
        let JobRun::Suspended { cycle, checkpoint } = run else {
            panic!("expected suspension, got {run:?}");
        };
        assert!(cycle >= 200, "suspended at cycle {cycle}");
        assert_eq!(checkpoint, ckpt.display().to_string());
        let resumed = h
            .run_job_managed(
                Benchmark::Lps,
                PrefetcherKind::Snake,
                Some(&ckpt),
                None,
                |_| false,
            )
            .unwrap();
        assert_eq!(resumed, JobRun::Finished(Box::new(full)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_under_a_different_mechanism_is_refused() {
        let h = Harness::quick();
        let dir =
            std::env::temp_dir().join(format!("snake-runner-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("job.ckpt");
        h.run_job_managed(
            Benchmark::Lps,
            PrefetcherKind::Snake,
            None,
            Some(&ckpt),
            |c| c.0 >= 100,
        )
        .unwrap();
        let err = h
            .run_job_managed(
                Benchmark::Lps,
                PrefetcherKind::Mta,
                Some(&ckpt),
                None,
                |_| false,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Snapshot(snake_sim::snapshot::SnapshotError::ConfigMismatch { .. })
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_job_reports_stop_reason() {
        let mut h = Harness::quick();
        let full = h.run_job(Benchmark::Lps, PrefetcherKind::Baseline).unwrap();
        assert_eq!(full.stop, StopReason::Completed);

        h.cfg.cycle_budget = Some(snake_sim::Cycle(50));
        let cut = h.run_job(Benchmark::Lps, PrefetcherKind::Baseline).unwrap();
        assert_eq!(cut.stop, StopReason::BudgetExceeded { budget: 50 });
        assert!(cut.report.cycles <= 50);
    }
}

//! The `snaked` wire format: newline-delimited JSON over a Unix-domain
//! socket, built on the dependency-free `snake_core::json` module.
//!
//! A connection carries exactly one request line. The daemon answers
//! with one response line — `{"ok":true,...}` or
//! `{"ok":false,"error":"..."}` — and for `tail` keeps the connection
//! open, streaming one object per line:
//!
//! - `{"type":"stream","job":"lps/snake","from":N}` — a per-job ring
//!   subscription opened; `from` is the first sequence number the
//!   subscriber can observe (later records may still be dropped).
//! - `{"type":"window",...}` — one metrics window (cycle, IPC, L1 hit
//!   rate, MSHR/miss-queue occupancy, NoC utilization, active warps,
//!   throttled SMs, chain depth, and the eight `stall_*` issue-slot
//!   fractions) plus `seq` and the cumulative `dropped` count.
//! - `{"type":"event",...}` — one trace event (`seq`, `cycle`, `name`,
//!   cumulative `dropped`).
//! - `{"type":"progress",...}` — the sweep counters, emitted whenever
//!   they change.
//! - `{"type":"done","state":...,"exit":N,"delivered":N,"dropped":N}`
//!   — terminal; `dropped` is the exact number of records this
//!   subscriber missed (ring overflow), never silently hidden.
//!
//! Drop accounting is end-to-end checkable: starting from each
//! `stream` line's `from`, the gaps in the delivered `seq` numbers sum
//! to the final `dropped` — [`client::tail`](super::client::tail)
//! verifies exactly that.

use snake_core::json::Value;
use snake_sim::{MetricsSample, TelemetryRecord, TraceEvent};

use crate::supervise::ProgressSnapshot;

/// A submitted sweep description, before benchmark/mechanism parsing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubmitSpec {
    /// Comma-separated benchmark list; `None` means the full suite.
    pub benchmarks: Option<String>,
    /// Comma-separated mechanism list; `None` means all mechanisms.
    pub mechanisms: Option<String>,
    /// Use the quick (scaled-down) harness instead of the standard one.
    pub quick: bool,
    /// Per-job cycle budget override.
    pub budget: Option<u64>,
    /// Metrics window in cycles (default 500).
    pub window: Option<u64>,
    /// Also stream per-cycle trace events (not just window rows).
    pub events: bool,
    /// Run every job of this sweep in a sandboxed worker subprocess
    /// (crash/rlimit containment). Mutually exclusive with `events`:
    /// the child protocol carries window rows losslessly but not the
    /// full trace-event stream.
    pub isolate: bool,
    /// Scheduling priority; higher runs first, FIFO within a priority.
    pub priority: u64,
    /// Client id for quota accounting (`snakectl --client`); anonymous
    /// submits share one bucket.
    pub client: Option<String>,
    /// Wall-clock budget per scheduling slice, in milliseconds: when it
    /// expires the running simulation suspends to a checkpoint and the
    /// job re-queues at its priority. Requires checkpointing.
    pub deadline_ms: Option<u64>,
    /// Mid-simulation checkpoint cadence in cycles (overrides the
    /// daemon default); what makes the job resurrectable after a crash.
    pub checkpoint_every: Option<u64>,
}

impl SubmitSpec {
    /// Serializes as a bare object of the non-default fields — shared
    /// by the `submit` wire line and the daemon's state journal, so a
    /// restarted daemon re-resolves exactly what was submitted.
    pub fn to_json(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(b) = &self.benchmarks {
            fields.push(("benchmarks".to_string(), Value::str(b)));
        }
        if let Some(m) = &self.mechanisms {
            fields.push(("mechanisms".to_string(), Value::str(m)));
        }
        if self.quick {
            fields.push(("quick".to_string(), Value::Bool(true)));
        }
        if let Some(b) = self.budget {
            fields.push(("budget".to_string(), Value::u64(b)));
        }
        if let Some(w) = self.window {
            fields.push(("window".to_string(), Value::u64(w)));
        }
        if self.events {
            fields.push(("events".to_string(), Value::Bool(true)));
        }
        if self.isolate {
            fields.push(("isolate".to_string(), Value::Bool(true)));
        }
        if self.priority != 0 {
            fields.push(("priority".to_string(), Value::u64(self.priority)));
        }
        if let Some(c) = &self.client {
            fields.push(("client".to_string(), Value::str(c)));
        }
        if let Some(d) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Value::u64(d)));
        }
        if let Some(n) = self.checkpoint_every {
            fields.push(("checkpoint_every".to_string(), Value::u64(n)));
        }
        Value::Obj(fields)
    }

    /// Parses the spec fields out of an object; absent fields default.
    pub fn from_json(v: &Value) -> SubmitSpec {
        let field = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
        SubmitSpec {
            benchmarks: field("benchmarks"),
            mechanisms: field("mechanisms"),
            quick: v.get("quick").and_then(Value::as_bool).unwrap_or(false),
            budget: v.get("budget").and_then(Value::as_u64),
            window: v.get("window").and_then(Value::as_u64),
            events: v.get("events").and_then(Value::as_bool).unwrap_or(false),
            isolate: v.get("isolate").and_then(Value::as_bool).unwrap_or(false),
            priority: v.get("priority").and_then(Value::as_u64).unwrap_or(0),
            client: field("client"),
            deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
            checkpoint_every: v.get("checkpoint_every").and_then(Value::as_u64),
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Queue a sweep; answered with `{"ok":true,"id":N}`.
    Submit(SubmitSpec),
    /// Report job states — all jobs, or one if `id` is given.
    Status {
        /// Restrict to a single job.
        id: Option<u64>,
    },
    /// Subscribe to a job's telemetry stream.
    Tail {
        /// The job to follow.
        id: u64,
        /// Ring index to start at (0 = from the job's first sub-job);
        /// a reconnecting client resumes at the ring it was cut off in.
        ring: u64,
        /// Sequence number to resume the first ring's subscription
        /// from; records the ring already overwrote are *counted* as
        /// dropped, keeping the sequence arithmetic verifiable.
        from: Option<u64>,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The job to cancel.
        id: u64,
    },
    /// Report daemon health: journal degradation counters, disconnect
    /// and checkpoint totals.
    Health,
    /// Stop accepting work, cancel everything, and exit.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = snake_core::json::parse(line).map_err(|e| format!("bad json: {e}"))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing \"op\"".to_string())?;
        let id = |required: bool| -> Result<Option<u64>, String> {
            match v.get("id") {
                Some(n) => n
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| "\"id\" must be a non-negative integer".to_string()),
                None if required => Err("missing \"id\"".to_string()),
                None => Ok(None),
            }
        };
        match op {
            "submit" => Ok(Request::Submit(SubmitSpec::from_json(&v))),
            "status" => Ok(Request::Status { id: id(false)? }),
            "tail" => Ok(Request::Tail {
                id: id(true)?.expect("required id"),
                ring: v.get("ring").and_then(Value::as_u64).unwrap_or(0),
                from: v.get("from").and_then(Value::as_u64),
            }),
            "cancel" => Ok(Request::Cancel {
                id: id(true)?.expect("required id"),
            }),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Renders the request as its wire line (without the newline).
    pub fn to_json(&self) -> Value {
        match self {
            Request::Submit(s) => {
                let mut fields = vec![("op".to_string(), Value::str("submit"))];
                if let Value::Obj(spec_fields) = s.to_json() {
                    fields.extend(spec_fields);
                }
                Value::Obj(fields)
            }
            Request::Status { id } => {
                let mut fields = vec![("op".into(), Value::str("status"))];
                if let Some(id) = id {
                    fields.push(("id".into(), Value::u64(*id)));
                }
                Value::Obj(fields)
            }
            Request::Tail { id, ring, from } => {
                let mut fields = vec![
                    ("op".to_string(), Value::str("tail")),
                    ("id".to_string(), Value::u64(*id)),
                ];
                if *ring != 0 {
                    fields.push(("ring".into(), Value::u64(*ring)));
                }
                if let Some(seq) = from {
                    fields.push(("from".into(), Value::u64(*seq)));
                }
                Value::Obj(fields)
            }
            Request::Cancel { id } => Value::Obj(vec![
                ("op".into(), Value::str("cancel")),
                ("id".into(), Value::u64(*id)),
            ]),
            Request::Health => Value::Obj(vec![("op".into(), Value::str("health"))]),
            Request::Shutdown => Value::Obj(vec![("op".into(), Value::str("shutdown"))]),
        }
    }
}

/// `{"ok":true,...fields}`.
pub fn ok_line(fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![("ok".into(), Value::Bool(true))];
    all.extend(fields);
    Value::Obj(all)
}

/// `{"ok":false,"error":...}`.
pub fn err_line(message: &str) -> Value {
    Value::Obj(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::str(message)),
    ])
}

/// `{"ok":false,"error":...,"code":...}` — a *typed* rejection the
/// client can dispatch on (e.g. `"quota"` → `snakectl` exit code 8)
/// instead of string-matching the message.
pub fn err_line_coded(message: &str, code: &str) -> Value {
    Value::Obj(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::str(message)),
        ("code".into(), Value::str(code)),
    ])
}

/// The `stream` line announcing a per-job ring subscription.
pub fn stream_line(job: &str, from: u64) -> Value {
    Value::Obj(vec![
        ("type".into(), Value::str("stream")),
        ("job".into(), Value::str(job)),
        ("from".into(), Value::u64(from)),
    ])
}

/// The `stream_end` line closing a per-job ring subscription: `next`
/// is the sequence one past the last record the ring ever produced, so
/// a trailing gap (records dropped and never followed by a delivered
/// one — e.g. a ring produced entirely before the subscriber arrived)
/// is still visible arithmetic, not silent absence.
pub fn stream_end_line(job: &str, next: u64) -> Value {
    Value::Obj(vec![
        ("type".into(), Value::str("stream_end")),
        ("job".into(), Value::str(job)),
        ("next".into(), Value::u64(next)),
    ])
}

/// One metrics window as a stream line.
pub fn window_line(job: &str, seq: u64, s: &MetricsSample, dropped: u64) -> Value {
    Value::Obj(vec![
        ("type".into(), Value::str("window")),
        ("job".into(), Value::str(job)),
        ("seq".into(), Value::u64(seq)),
        ("cycle".into(), Value::u64(s.cycle)),
        ("ipc".into(), Value::f64(s.ipc)),
        ("l1_hit_rate".into(), Value::f64(s.l1_hit_rate)),
        ("mshr_occupancy".into(), Value::f64(s.mshr_occupancy)),
        (
            "miss_queue_occupancy".into(),
            Value::f64(s.miss_queue_occupancy),
        ),
        ("noc_utilization".into(), Value::f64(s.noc_utilization)),
        ("active_warps".into(), Value::u64(s.active_warps as u64)),
        ("throttled_sms".into(), Value::u64(s.throttled_sms as u64)),
        ("chain_depth".into(), Value::u64(u64::from(s.chain_depth))),
        ("stall_issued".into(), Value::f64(s.stall_issued)),
        ("stall_no_warp".into(), Value::f64(s.stall_no_warp)),
        ("stall_barrier".into(), Value::f64(s.stall_barrier)),
        ("stall_scoreboard".into(), Value::f64(s.stall_scoreboard)),
        ("stall_mem_data".into(), Value::f64(s.stall_mem_data)),
        ("stall_mem_mshr".into(), Value::f64(s.stall_mem_mshr)),
        ("stall_mem_missq".into(), Value::f64(s.stall_mem_missq)),
        ("stall_mem_noc".into(), Value::f64(s.stall_mem_noc)),
        ("dropped".into(), Value::u64(dropped)),
    ])
}

/// One trace event as a stream line.
pub fn event_line(job: &str, seq: u64, e: &TraceEvent, dropped: u64) -> Value {
    Value::Obj(vec![
        ("type".into(), Value::str("event")),
        ("job".into(), Value::str(job)),
        ("seq".into(), Value::u64(seq)),
        ("cycle".into(), Value::u64(e.cycle.0)),
        ("name".into(), Value::str(e.data.name())),
        ("dropped".into(), Value::u64(dropped)),
    ])
}

/// One telemetry record as a stream line.
pub fn record_line(job: &str, seq: u64, rec: &TelemetryRecord, dropped: u64) -> Value {
    match rec {
        TelemetryRecord::Window(s) => window_line(job, seq, s, dropped),
        TelemetryRecord::Event(e) => event_line(job, seq, e, dropped),
    }
}

/// The sweep counters as a stream line.
pub fn progress_line(snap: &ProgressSnapshot) -> Value {
    let mut fields = vec![("type".into(), Value::str("progress"))];
    if let Value::Obj(counters) = snap.to_json() {
        fields.extend(counters);
    }
    Value::Obj(fields)
}

/// The terminal stream line.
pub fn done_line(state: &str, exit: i32, delivered: u64, dropped: u64) -> Value {
    // Exit codes are small non-negative constants; the json module is
    // unsigned-only, which is fine here.
    Value::Obj(vec![
        ("type".into(), Value::str("done")),
        ("state".into(), Value::str(state)),
        ("exit".into(), Value::u64(exit.max(0) as u64)),
        ("delivered".into(), Value::u64(delivered)),
        ("dropped".into(), Value::u64(dropped)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let spec = SubmitSpec {
            benchmarks: Some("LPS,CP".into()),
            mechanisms: Some("baseline,snake".into()),
            quick: true,
            budget: Some(6000),
            window: Some(200),
            events: true,
            isolate: true,
            priority: 5,
            client: Some("alice".into()),
            deadline_ms: Some(1500),
            checkpoint_every: Some(2000),
        };
        let line = Request::Submit(spec.clone()).to_json().to_string();
        assert_eq!(Request::parse(&line), Ok(Request::Submit(spec.clone())));
        // The bare-spec object (the journal's `spec` field) agrees.
        assert_eq!(SubmitSpec::from_json(&spec.to_json()), spec);
    }

    #[test]
    fn defaults_are_omitted_and_reparsed() {
        let line = Request::Submit(SubmitSpec::default()).to_json().to_string();
        assert_eq!(line, "{\"op\":\"submit\"}");
        assert_eq!(
            Request::parse(&line),
            Ok(Request::Submit(SubmitSpec::default()))
        );
    }

    #[test]
    fn ops_round_trip() {
        for req in [
            Request::Status { id: None },
            Request::Status { id: Some(3) },
            Request::Tail {
                id: 1,
                ring: 0,
                from: None,
            },
            Request::Tail {
                id: 1,
                ring: 2,
                from: Some(777),
            },
            Request::Cancel { id: 9 },
            Request::Health,
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&req.to_json().to_string()), Ok(req));
        }
    }

    #[test]
    fn coded_errors_carry_their_code() {
        let line = err_line_coded("too many queued jobs", "quota").to_string();
        let v = snake_core::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Value::as_str), Some("quota"));
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(Request::parse("nonsense").is_err());
        assert!(Request::parse("{\"op\":\"warp\"}").is_err());
        assert!(Request::parse("{\"op\":\"tail\"}").is_err());
        assert!(Request::parse("{\"op\":\"tail\",\"id\":\"x\"}").is_err());
    }
}

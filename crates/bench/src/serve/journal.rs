//! The daemon's crash-consistent state journal.
//!
//! Layout: headerless JSONL, one event object per line, sharing the
//! manifest's crash-consistency rules (append + flush + `sync_data`
//! per line; a torn final line is tolerated on load and truncated away
//! on reopen; a malformed line *before* the tail is corruption and
//! fails the load):
//!
//! ```text
//! {"event":"submitted","id":1,"spec":{"benchmarks":"LPS","quick":true}}
//! {"event":"running","id":1}
//! {"event":"checkpoint","id":1,"job":"LPS/snake","cycle":2000,"path":"state.jsonl.j1.LPS-snake.ckpt"}
//! {"event":"job","id":1,"record":{"job":"LPS/snake","state":"completed",...}}
//! {"event":"checkpoint_cleared","id":1,"job":"LPS/snake"}
//! {"event":"done","id":1,"terminal":true,"exit":0}
//! ```
//!
//! The `submitted` / `"terminal":true` line shapes are a stable
//! contract: the CI journal-balance check counts them with `grep`, and
//! `submitted == terminal` is the no-orphans invariant.
//!
//! Three layers, separable on purpose:
//!
//! * [`JournalEvent`] — the typed line vocabulary with bidirectional
//!   JSON mapping (job records reuse the manifest's
//!   [`JobRecord`] serialization verbatim, so the sweep and serving
//!   planes journal identical facts);
//! * [`Journal`] — the append handle. Writes are best-effort by design
//!   (a full disk must never take down running simulations) but *never
//!   silent*: every failed append is counted and flips the sticky
//!   degraded flag that `status` and `health` surface;
//! * [`load`] + [`recover`] — replay: parse the surviving lines, then
//!   pure-functionally fold them into per-job recovered state (what to
//!   re-queue, what was terminal, which mid-simulation checkpoints are
//!   still live). `recover` touches no I/O, so property tests can feed
//!   it arbitrary event interleavings.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use snake_core::json::{self, Value};

use super::protocol::SubmitSpec;
use crate::supervise::manifest::truncate_torn_tail;
use crate::supervise::JobRecord;

/// One journal line.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A sweep was accepted; `spec` is everything needed to re-resolve
    /// it after a restart (including client id and priority).
    Submitted {
        /// The daemon-assigned job id.
        id: u64,
        /// The submitted spec, replayable through `resolve`.
        spec: SubmitSpec,
    },
    /// The scheduler started (or restarted) running the job.
    Running {
        /// The job id.
        id: u64,
    },
    /// The job went back to the queue (deadline suspension, or restart
    /// recovery re-queueing a non-terminal job).
    Requeued {
        /// The job id.
        id: u64,
    },
    /// One supervised sub-job reached a durable record (completed,
    /// quarantined, or suspended) — the manifest vocabulary, reused.
    Job {
        /// The sweep the sub-job belongs to.
        id: u64,
        /// The sub-job's manifest record.
        record: JobRecord,
    },
    /// A mid-simulation checkpoint became durable on disk.
    Checkpoint {
        /// The sweep the sub-job belongs to.
        id: u64,
        /// The sub-job id, `"<abbr>/<mechanism>"`.
        job: String,
        /// Simulation cycle the state was captured at.
        cycle: u64,
        /// Path of the checkpoint artifact.
        path: String,
    },
    /// A sub-job's checkpoint artifact was removed (the sub-job
    /// finished, or its sweep was cancelled).
    CheckpointCleared {
        /// The sweep the sub-job belongs to.
        id: u64,
        /// The sub-job id.
        job: String,
    },
    /// The sweep reached a terminal state; balances its `submitted`.
    Terminal {
        /// The job id.
        id: u64,
        /// `"done"` or `"cancelled"`.
        state: String,
        /// The exit code `snakectl tail` reports for it.
        exit: i32,
    },
}

impl JournalEvent {
    /// Serializes to one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> Value {
        let base = |event: &str, id: u64| {
            vec![
                ("event".to_string(), Value::str(event)),
                ("id".to_string(), Value::u64(id)),
            ]
        };
        match self {
            JournalEvent::Submitted { id, spec } => {
                let mut fields = base("submitted", *id);
                fields.push(("spec".into(), spec.to_json()));
                Value::Obj(fields)
            }
            JournalEvent::Running { id } => Value::Obj(base("running", *id)),
            JournalEvent::Requeued { id } => Value::Obj(base("requeued", *id)),
            JournalEvent::Job { id, record } => {
                let mut fields = base("job", *id);
                fields.push(("record".into(), record.to_json()));
                Value::Obj(fields)
            }
            JournalEvent::Checkpoint {
                id,
                job,
                cycle,
                path,
            } => {
                let mut fields = base("checkpoint", *id);
                fields.push(("job".into(), Value::str(job)));
                fields.push(("cycle".into(), Value::u64(*cycle)));
                fields.push(("path".into(), Value::str(path)));
                Value::Obj(fields)
            }
            JournalEvent::CheckpointCleared { id, job } => {
                let mut fields = base("checkpoint_cleared", *id);
                fields.push(("job".into(), Value::str(job)));
                Value::Obj(fields)
            }
            JournalEvent::Terminal { id, state, exit } => {
                let mut fields = base(state, *id);
                fields.push(("terminal".into(), Value::Bool(true)));
                fields.push(("exit".into(), Value::u64((*exit).max(0) as u64)));
                Value::Obj(fields)
            }
        }
    }

    /// Parses one journal line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let event = v
            .get("event")
            .and_then(Value::as_str)
            .ok_or("missing \"event\" field")?;
        let id = v
            .get("id")
            .and_then(Value::as_u64)
            .ok_or("missing \"id\" field")?;
        let job = || -> Result<String, String> {
            Ok(v.get("job")
                .and_then(Value::as_str)
                .ok_or("missing \"job\" field")?
                .to_string())
        };
        match event {
            "submitted" => Ok(JournalEvent::Submitted {
                id,
                spec: match v.get("spec") {
                    Some(spec) => SubmitSpec::from_json(spec),
                    // PR-5-era journals had no spec; an empty spec still
                    // resolves (full campaign at default priority).
                    None => SubmitSpec::default(),
                },
            }),
            "running" => Ok(JournalEvent::Running { id }),
            "requeued" => Ok(JournalEvent::Requeued { id }),
            "job" => Ok(JournalEvent::Job {
                id,
                record: JobRecord::from_json(v.get("record").ok_or("missing \"record\" field")?)?,
            }),
            "checkpoint" => Ok(JournalEvent::Checkpoint {
                id,
                job: job()?,
                cycle: v
                    .get("cycle")
                    .and_then(Value::as_u64)
                    .ok_or("missing \"cycle\" field")?,
                path: v
                    .get("path")
                    .and_then(Value::as_str)
                    .ok_or("missing \"path\" field")?
                    .to_string(),
            }),
            "checkpoint_cleared" => Ok(JournalEvent::CheckpointCleared { id, job: job()? }),
            state if v.get("terminal").and_then(Value::as_bool) == Some(true) => {
                Ok(JournalEvent::Terminal {
                    id,
                    state: state.to_string(),
                    exit: v
                        .get("exit")
                        .and_then(Value::as_u64)
                        .ok_or("missing \"exit\" field")? as i32,
                })
            }
            other => Err(format!("unknown journal event {other:?}")),
        }
    }
}

/// A failure reading a journal (writing never fails loudly — see
/// [`Journal::append`]).
#[derive(Debug)]
pub enum JournalError {
    /// File-system failure.
    Io {
        /// The journal path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A line before the torn tail is malformed: real corruption.
    Malformed {
        /// The journal path involved.
        path: String,
        /// 1-based line number of the bad line.
        line: usize,
        /// What was wrong with it.
        why: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, source } => write!(f, "{path}: {source}"),
            JournalError::Malformed { path, line, why } => {
                write!(f, "{path}:{line}: malformed journal: {why}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            JournalError::Malformed { .. } => None,
        }
    }
}

/// Append handle on the daemon's state journal.
///
/// Appends are deliberately infallible at the call site: a journal
/// failure (disk full, device error) must degrade observability, not
/// availability — running simulations keep going. But the loss is
/// *counted*, not swallowed: [`Journal::errors`] and
/// [`Journal::degraded`] feed the `journal_degraded` field in `status`
/// and `health`, and the degraded flag is sticky because a journal
/// with a hole in it can no longer prove the no-orphans invariant.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    errors: AtomicU64,
}

impl Journal {
    /// Opens (or creates) the journal for appending. A torn final line
    /// from a crashed writer is truncated away first, so a new event is
    /// never glued onto partial bytes. Non-regular targets (`/dev/null`,
    /// a full device node) are opened as-is — the degradation counters
    /// then do their job.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`std::io::Error`] when the file cannot
    /// be opened or the torn tail cannot be truncated.
    pub fn open_append(path: &Path) -> Result<Journal, std::io::Error> {
        if std::fs::metadata(path)
            .map(|m| m.is_file())
            .unwrap_or(false)
        {
            truncate_torn_tail(path)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            errors: AtomicU64::new(0),
        })
    }

    /// Appends one event, making it durable (flush + `sync_data`)
    /// before returning. On failure the event is lost but the loss is
    /// counted — see the type-level contract.
    pub fn append(&self, event: &JournalEvent) {
        let mut f = self.file.lock().unwrap();
        let attempt = (|| -> std::io::Result<()> {
            writeln!(f, "{}", event.to_json())?;
            f.flush()?;
            f.sync_data()
        })();
        if attempt.is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of events lost to append failures.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// True once any append has failed. Sticky: a journal that lost
    /// even one event can no longer prove `submitted == terminal`.
    pub fn degraded(&self) -> bool {
        self.errors() > 0
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Loads a journal, tolerating a torn final line (dropped — the events
/// before it are intact and sufficient).
///
/// # Errors
///
/// Returns [`JournalError`] when the file is unreadable or a line
/// *before* the final one is malformed.
pub fn load(path: &Path) -> Result<Vec<JournalEvent>, JournalError> {
    let text = std::fs::read_to_string(path).map_err(|source| JournalError::Io {
        path: path.display().to_string(),
        source,
    })?;
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let last = lines.len();
    let mut events = Vec::with_capacity(lines.len());
    for (n, (line_no, line)) in lines.into_iter().enumerate() {
        let parsed = json::parse(line)
            .map_err(|e| e.to_string())
            .and_then(|v| JournalEvent::from_json(&v));
        match parsed {
            Ok(ev) => events.push(ev),
            // A bad final line is a torn append from a crash: drop it.
            Err(_) if n + 1 == last => break,
            Err(why) => {
                return Err(JournalError::Malformed {
                    path: path.display().to_string(),
                    line: line_no + 1,
                    why,
                })
            }
        }
    }
    Ok(events)
}

/// One job reconstructed from the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// The daemon-assigned id it had (and keeps).
    pub id: u64,
    /// The spec it was submitted with.
    pub spec: SubmitSpec,
    /// `Some((state, exit))` when the journal recorded a terminal line;
    /// `None` means the job is non-terminal and must be re-queued.
    pub terminal: Option<(String, i32)>,
    /// Last durable record per sub-job. For a non-terminal job this is
    /// the replay set handed to the supervisor — a live checkpoint
    /// newer than the sub-job's last record (the daemon died after the
    /// checkpoint but before the record) is folded in as a synthesized
    /// `Suspended` record, which is exactly what resurrects the
    /// simulation mid-run.
    pub records: HashMap<String, JobRecord>,
    /// Checkpoint artifacts journaled and never cleared, keyed by
    /// sub-job id. For terminal jobs these are stale files to sweep up.
    pub live_checkpoints: HashMap<String, String>,
}

/// Everything [`recover`] reconstructed.
#[derive(Debug, Default, PartialEq)]
pub struct Recovered {
    /// Jobs in id order.
    pub jobs: Vec<RecoveredJob>,
    /// The next id a fresh submit gets (max recovered id + 1).
    pub next_id: u64,
}

/// Folds a journal's events into recovered per-job state. Pure — no
/// file-system access — so the replay rules are property-testable
/// against arbitrary event interleavings.
pub fn recover(events: &[JournalEvent]) -> Recovered {
    struct Acc {
        spec: SubmitSpec,
        // (event index, record): the index orders records against
        // checkpoints, deciding which of the two is the job's truth.
        records: HashMap<String, (usize, JobRecord)>,
        ckpts: HashMap<String, (usize, u64, String)>,
        terminal: Option<(String, i32)>,
    }
    let mut accs: BTreeMap<u64, Acc> = BTreeMap::new();
    for (n, ev) in events.iter().enumerate() {
        match ev {
            JournalEvent::Submitted { id, spec } => {
                accs.insert(
                    *id,
                    Acc {
                        spec: spec.clone(),
                        records: HashMap::new(),
                        ckpts: HashMap::new(),
                        terminal: None,
                    },
                );
            }
            JournalEvent::Running { .. } | JournalEvent::Requeued { .. } => {}
            JournalEvent::Job { id, record } => {
                if let Some(a) = accs.get_mut(id) {
                    a.records
                        .insert(record.job().to_string(), (n, record.clone()));
                }
            }
            JournalEvent::Checkpoint {
                id,
                job,
                cycle,
                path,
            } => {
                if let Some(a) = accs.get_mut(id) {
                    a.ckpts.insert(job.clone(), (n, *cycle, path.clone()));
                }
            }
            JournalEvent::CheckpointCleared { id, job } => {
                if let Some(a) = accs.get_mut(id) {
                    a.ckpts.remove(job);
                }
            }
            JournalEvent::Terminal { id, state, exit } => {
                if let Some(a) = accs.get_mut(id) {
                    a.terminal = Some((state.clone(), *exit));
                }
            }
        }
    }
    let next_id = accs.keys().next_back().map_or(1, |max| max + 1);
    let jobs = accs
        .into_iter()
        .map(|(id, a)| {
            let mut records: HashMap<String, JobRecord> = HashMap::new();
            for (job, (rec_n, rec)) in &a.records {
                let newer_ckpt = a
                    .terminal
                    .is_none()
                    .then(|| a.ckpts.get(job).filter(|(ck_n, _, _)| ck_n > rec_n))
                    .flatten();
                match newer_ckpt {
                    // The simulation advanced past this record before
                    // the crash: resume from the checkpoint instead.
                    Some((_, cycle, path)) => {
                        records.insert(
                            job.clone(),
                            JobRecord::Suspended {
                                job: job.clone(),
                                attempts: 1,
                                cycle: *cycle,
                                checkpoint: path.clone(),
                            },
                        );
                    }
                    None => {
                        records.insert(job.clone(), rec.clone());
                    }
                }
            }
            if a.terminal.is_none() {
                // Checkpoints for sub-jobs with no record at all: the
                // daemon died mid-first-run of that sub-job.
                for (job, (_, cycle, path)) in &a.ckpts {
                    records.entry(job.clone()).or_insert(JobRecord::Suspended {
                        job: job.clone(),
                        attempts: 1,
                        cycle: *cycle,
                        checkpoint: path.clone(),
                    });
                }
            }
            RecoveredJob {
                id,
                spec: a.spec,
                terminal: a.terminal,
                records,
                live_checkpoints: a
                    .ckpts
                    .into_iter()
                    .map(|(job, (_, _, path))| (job, path))
                    .collect(),
            }
        })
        .collect();
    Recovered { jobs, next_id }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_roundtrip(ev: JournalEvent) {
        let line = ev.to_json().to_string();
        let back = JournalEvent::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, ev, "line was {line}");
    }

    #[test]
    fn events_round_trip() {
        ev_roundtrip(JournalEvent::Submitted {
            id: 3,
            spec: SubmitSpec {
                benchmarks: Some("LPS".into()),
                client: Some("alice".into()),
                deadline_ms: Some(250),
                checkpoint_every: Some(1000),
                priority: 2,
                quick: true,
                ..SubmitSpec::default()
            },
        });
        ev_roundtrip(JournalEvent::Running { id: 3 });
        ev_roundtrip(JournalEvent::Requeued { id: 3 });
        ev_roundtrip(JournalEvent::Job {
            id: 3,
            record: JobRecord::Quarantined {
                job: "LPS/snake".into(),
                attempts: 2,
                error: "panic: boom".into(),
                crash: Some("signal 9".into()),
                stderr: Some("Killed".into()),
            },
        });
        ev_roundtrip(JournalEvent::Checkpoint {
            id: 3,
            job: "LPS/snake".into(),
            cycle: 4000,
            path: "state.jsonl.j3.LPS-snake.ckpt".into(),
        });
        ev_roundtrip(JournalEvent::CheckpointCleared {
            id: 3,
            job: "LPS/snake".into(),
        });
        ev_roundtrip(JournalEvent::Terminal {
            id: 3,
            state: "done".into(),
            exit: 0,
        });
        ev_roundtrip(JournalEvent::Terminal {
            id: 4,
            state: "cancelled".into(),
            exit: 7,
        });
    }

    #[test]
    fn terminal_lines_keep_the_grep_contract() {
        // ci.sh balances the journal with these exact substrings.
        let sub = JournalEvent::Submitted {
            id: 1,
            spec: SubmitSpec::default(),
        }
        .to_json()
        .to_string();
        assert!(sub.contains("\"event\":\"submitted\""), "{sub}");
        let term = JournalEvent::Terminal {
            id: 1,
            state: "done".into(),
            exit: 0,
        }
        .to_json()
        .to_string();
        assert!(term.contains("\"terminal\":true"), "{term}");
        assert!(term.contains("\"event\":\"done\""), "{term}");
    }

    #[test]
    fn recover_requeues_non_terminal_and_keeps_terminal() {
        let spec = SubmitSpec {
            priority: 5,
            ..SubmitSpec::default()
        };
        let events = vec![
            JournalEvent::Submitted {
                id: 1,
                spec: spec.clone(),
            },
            JournalEvent::Running { id: 1 },
            JournalEvent::Terminal {
                id: 1,
                state: "done".into(),
                exit: 0,
            },
            JournalEvent::Submitted {
                id: 2,
                spec: SubmitSpec::default(),
            },
        ];
        let r = recover(&events);
        assert_eq!(r.next_id, 3);
        assert_eq!(r.jobs.len(), 2);
        assert_eq!(r.jobs[0].terminal, Some(("done".into(), 0)));
        assert_eq!(r.jobs[1].terminal, None);
        assert_eq!(r.jobs[1].spec, SubmitSpec::default());
        assert_eq!(r.jobs[0].spec, spec);
    }

    #[test]
    fn recover_synthesizes_suspension_from_a_live_checkpoint() {
        let events = vec![
            JournalEvent::Submitted {
                id: 1,
                spec: SubmitSpec::default(),
            },
            JournalEvent::Running { id: 1 },
            JournalEvent::Checkpoint {
                id: 1,
                job: "LPS/snake".into(),
                cycle: 6000,
                path: "j1.ckpt".into(),
            },
        ];
        let r = recover(&events);
        assert_eq!(
            r.jobs[0].records.get("LPS/snake"),
            Some(&JobRecord::Suspended {
                job: "LPS/snake".into(),
                attempts: 1,
                cycle: 6000,
                checkpoint: "j1.ckpt".into(),
            })
        );
        assert_eq!(
            r.jobs[0].live_checkpoints.get("LPS/snake"),
            Some(&"j1.ckpt".to_string())
        );
    }

    #[test]
    fn recover_prefers_newer_evidence() {
        let completed = JobRecord::Completed {
            job: "LPS/snake".into(),
            attempts: 1,
            stop: "completed".into(),
            report: snake_core::MechanismReport::default(),
        };
        // Record then newer checkpoint: the sim resumed and advanced —
        // the checkpoint wins.
        let mut events = vec![
            JournalEvent::Submitted {
                id: 1,
                spec: SubmitSpec::default(),
            },
            JournalEvent::Job {
                id: 1,
                record: completed.clone(),
            },
            JournalEvent::Checkpoint {
                id: 1,
                job: "LPS/snake".into(),
                cycle: 9000,
                path: "late.ckpt".into(),
            },
        ];
        let r = recover(&events);
        assert!(matches!(
            r.jobs[0].records.get("LPS/snake"),
            Some(JobRecord::Suspended { cycle: 9000, .. })
        ));
        // Checkpoint then newer record (plus a cleared checkpoint):
        // the record wins.
        events = vec![
            JournalEvent::Submitted {
                id: 1,
                spec: SubmitSpec::default(),
            },
            JournalEvent::Checkpoint {
                id: 1,
                job: "LPS/snake".into(),
                cycle: 2000,
                path: "early.ckpt".into(),
            },
            JournalEvent::Job {
                id: 1,
                record: completed.clone(),
            },
            JournalEvent::CheckpointCleared {
                id: 1,
                job: "LPS/snake".into(),
            },
        ];
        let r = recover(&events);
        assert_eq!(r.jobs[0].records.get("LPS/snake"), Some(&completed));
        assert!(r.jobs[0].live_checkpoints.is_empty());
    }

    #[test]
    fn append_counts_failures_instead_of_hiding_them() {
        // /dev/full accepts the open but fails every write with ENOSPC
        // — the canonical journal-disk-death simulation.
        let full = Path::new("/dev/full");
        if !full.exists() {
            return; // non-Linux CI
        }
        let j = Journal::open_append(full).expect("open /dev/full");
        assert!(!j.degraded());
        j.append(&JournalEvent::Running { id: 1 });
        j.append(&JournalEvent::Running { id: 2 });
        assert_eq!(j.errors(), 2);
        assert!(j.degraded(), "degradation must be visible");
    }

    #[test]
    fn open_append_heals_a_torn_tail() {
        let path =
            std::env::temp_dir().join(format!("snake-journal-heal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open_append(&path).unwrap();
            j.append(&JournalEvent::Submitted {
                id: 1,
                spec: SubmitSpec::default(),
            });
            assert_eq!(j.errors(), 0);
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"event\":\"runn").unwrap();
        }
        // Load tolerates the torn tail; reopen truncates it so the next
        // append starts on a clean line.
        assert_eq!(load(&path).unwrap().len(), 1);
        {
            let j = Journal::open_append(&path).unwrap();
            j.append(&JournalEvent::Running { id: 1 });
        }
        let events = load(&path).unwrap();
        assert_eq!(
            events,
            vec![
                JournalEvent::Submitted {
                    id: 1,
                    spec: SubmitSpec::default(),
                },
                JournalEvent::Running { id: 1 },
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn midfile_corruption_is_fatal_on_load() {
        let path = std::env::temp_dir().join(format!(
            "snake-journal-corrupt-{}.jsonl",
            std::process::id()
        ));
        std::fs::write(
            &path,
            "{\"event\":\"submitted\",\"id\":1}\nnot json\n{\"event\":\"running\",\"id\":1}\n",
        )
        .unwrap();
        let err = load(&path).unwrap_err();
        assert!(
            matches!(err, JournalError::Malformed { line: 2, .. }),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

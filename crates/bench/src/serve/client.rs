//! The `snakectl` side of the protocol: one-shot requests and the
//! `tail` line pump. The end-to-end tests drive the daemon through
//! exactly these functions, so what the tests verify is what the CLI
//! ships.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use snake_core::json::{self, Value};

use super::protocol::Request;

/// Why a client call failed: transport trouble, or the daemon said no.
///
/// The split matters for exit codes: a typed daemon refusal (e.g. the
/// `"quota"` admission rejection) carries its `code` so `snakectl` can
/// map it to a distinct exit code instead of a generic failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket/stream failure, or a malformed stream (bad JSON, broken
    /// sequence accounting).
    Io(io::Error),
    /// The daemon answered `{"ok":false,...}`.
    Daemon {
        /// The daemon's human-readable error message.
        message: String,
        /// Machine-readable rejection code, when the daemon sent one
        /// (currently `"quota"` for admission-control rejections).
        code: Option<String>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "{e}"),
            ClientError::Daemon { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Daemon { .. } => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// Whether this is a daemon rejection carrying the given code.
    pub fn has_code(&self, code: &str) -> bool {
        matches!(self, ClientError::Daemon { code: Some(c), .. } if c == code)
    }
}

/// Turns a protocol-level failure into an [`io::Error`]-backed error.
fn protocol_error(message: impl Into<String>) -> ClientError {
    ClientError::Io(io::Error::new(io::ErrorKind::InvalidData, message.into()))
}

/// Reads one response line and checks its `ok` field.
fn read_response(reader: &mut impl BufRead) -> Result<Value, ClientError> {
    let mut line = String::new();
    if reader.read_line(&mut line).map_err(ClientError::Io)? == 0 {
        return Err(protocol_error("daemon closed the connection"));
    }
    let v = json::parse(line.trim()).map_err(|e| protocol_error(format!("bad response: {e}")))?;
    match v.get("ok").and_then(Value::as_bool) {
        Some(true) => Ok(v),
        _ => Err(ClientError::Daemon {
            message: v
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown daemon error")
                .to_string(),
            code: v.get("code").and_then(Value::as_str).map(str::to_string),
        }),
    }
}

/// Sends one request and returns the daemon's response object.
///
/// # Errors
///
/// [`ClientError::Io`] when the socket is unreachable or the response
/// is malformed; [`ClientError::Daemon`] (with any typed `code`) when
/// the daemon answers `{"ok":false,...}`.
pub fn request(socket: &Path, req: &Request) -> Result<Value, ClientError> {
    let mut stream = UnixStream::connect(socket).map_err(ClientError::Io)?;
    writeln!(stream, "{}", req.to_json()).map_err(ClientError::Io)?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// How a [`tail_watch`] pump ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailOutcome {
    /// The daemon sent its terminal `done` line, and the drop
    /// accounting verified.
    Done(TailEnd),
    /// The callback asked to stop; the connection was dropped
    /// mid-stream, so there is no terminal accounting to report.
    Stopped,
}

/// What a finished [`tail`] verified and observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailEnd {
    /// Terminal state label (`"done"` or `"cancelled"`).
    pub state: String,
    /// The exit code the daemon reported for the job.
    pub exit: i32,
    /// Stream records (window/event lines) delivered.
    pub delivered: u64,
    /// Records this subscriber provably missed (ring overflow, or —
    /// with `from` — history overwritten before the reconnect).
    pub dropped: u64,
}

/// Follows a job's telemetry stream from the beginning; see
/// [`tail_from`].
///
/// # Errors
///
/// As [`tail_from`].
pub fn tail(socket: &Path, id: u64, on_line: impl FnMut(&Value)) -> Result<TailEnd, ClientError> {
    tail_from(socket, id, 0, None, on_line)
}

/// Follows a job's telemetry stream, invoking `on_line` for every
/// stream object (including the final `done` line), and returns the
/// terminal summary. `ring` skips already-consumed per-attempt rings
/// and `from` resumes the first ring at a sequence number — together
/// they let a disconnected subscriber reconnect mid-stream without
/// re-reading (or silently missing) anything.
///
/// Verifies the daemon's drop accounting end-to-end: within each ring
/// (the span from its `stream` line's `from` to its `stream_end`
/// line's `next`), the gaps in delivered `seq` numbers — including the
/// trailing gap up to `next` — must sum to exactly the `dropped` total
/// the `done` line claims. Any mismatch is an error, so loss can never
/// pass silently.
///
/// # Errors
///
/// [`ClientError::Io`] for socket failures, a malformed stream, or
/// inconsistent drop accounting; [`ClientError::Daemon`] for a
/// daemon-side error response.
pub fn tail_from(
    socket: &Path,
    id: u64,
    ring: u64,
    from: Option<u64>,
    mut on_line: impl FnMut(&Value),
) -> Result<TailEnd, ClientError> {
    match tail_watch(socket, id, ring, from, |v| {
        on_line(v);
        true
    })? {
        TailOutcome::Done(end) => Ok(end),
        TailOutcome::Stopped => unreachable!("callback always continues"),
    }
}

/// Like [`tail_from`], but the callback decides whether to keep
/// following: returning `false` drops the connection and ends the pump
/// with [`TailOutcome::Stopped`] — how `snakectl top --once` exits
/// after its first rendered window without waiting for the job to
/// finish. Sequence verification still runs on every line delivered
/// before the stop.
///
/// # Errors
///
/// As [`tail_from`].
pub fn tail_watch(
    socket: &Path,
    id: u64,
    ring: u64,
    from: Option<u64>,
    mut on_line: impl FnMut(&Value) -> bool,
) -> Result<TailOutcome, ClientError> {
    let stream = UnixStream::connect(socket).map_err(ClientError::Io)?;
    {
        let mut w = &stream;
        writeln!(w, "{}", Request::Tail { id, ring, from }.to_json()).map_err(ClientError::Io)?;
    }
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)?;

    let mut expected_next: Option<u64> = None;
    let mut gaps = 0u64;
    let mut seen = 0u64;
    for line in reader.lines() {
        let line = line.map_err(ClientError::Io)?;
        let v = json::parse(line.trim())
            .map_err(|e| protocol_error(format!("bad stream line: {e}")))?;
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| protocol_error("stream line without \"type\""))?
            .to_string();
        let keep_going = on_line(&v);
        match kind.as_str() {
            "stream" => {
                let from = v
                    .get("from")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| protocol_error("stream line without \"from\""))?;
                expected_next = Some(from);
            }
            "stream_end" => {
                let next = v
                    .get("next")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| protocol_error("stream_end line without \"next\""))?;
                let expected = expected_next
                    .ok_or_else(|| protocol_error("stream_end before its stream header"))?;
                if next < expected {
                    return Err(protocol_error(format!(
                        "stream_end went backwards: {next} after {expected}"
                    )));
                }
                // A trailing gap means records were produced that this
                // subscriber never saw; they are part of `dropped`.
                gaps += next - expected;
                expected_next = None;
            }
            "window" | "event" => {
                let seq = v
                    .get("seq")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| protocol_error("record without \"seq\""))?;
                let expected = expected_next
                    .ok_or_else(|| protocol_error("record before its stream header"))?;
                if seq < expected {
                    return Err(protocol_error(format!(
                        "sequence went backwards: {seq} after {expected}"
                    )));
                }
                gaps += seq - expected;
                expected_next = Some(seq + 1);
                seen += 1;
            }
            "progress" => {}
            "done" => {
                let field = |k: &str| {
                    v.get(k)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| protocol_error(format!("done line without {k:?}")))
                };
                let end = TailEnd {
                    state: v
                        .get("state")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    exit: field("exit")? as i32,
                    delivered: field("delivered")?,
                    dropped: field("dropped")?,
                };
                if end.delivered != seen {
                    return Err(protocol_error(format!(
                        "daemon claims {} delivered records, stream carried {seen}",
                        end.delivered
                    )));
                }
                if end.dropped != gaps {
                    return Err(protocol_error(format!(
                        "drop accounting mismatch: done line claims {}, \
                         sequence gaps sum to {gaps}",
                        end.dropped
                    )));
                }
                return Ok(TailOutcome::Done(end));
            }
            other => {
                return Err(protocol_error(format!(
                    "unknown stream line type {other:?}"
                )))
            }
        }
        if !keep_going {
            return Ok(TailOutcome::Stopped);
        }
    }
    Err(protocol_error("stream ended without a done line"))
}

//! The live telemetry plane: `snaked`, a local daemon that queues
//! simulate/sweep jobs, runs them through the sweep supervisor, and
//! streams cycle-stamped telemetry to any number of subscribers.
//!
//! Three pieces:
//!
//! - [`protocol`] — the newline-delimited JSON wire format (built
//!   entirely on the dependency-free `snake_core::json` module): one
//!   request object per connection, one response line, and for `tail`
//!   a stream of window/event/progress lines ending in a `done` line.
//! - [`daemon`] — the server: a Unix-domain socket accept loop, a
//!   priority job queue with cancellation, and a scheduler thread that
//!   runs each request through
//!   [`run_supervised`](crate::supervise::run_supervised) with a
//!   per-job [`TelemetryRing`](snake_sim::TelemetryRing) carrying
//!   window rows and trace events out of the simulation thread.
//! - [`client`] — the `snakectl` side: one-shot requests and the
//!   `tail` line pump, reused verbatim by the end-to-end tests.
//!
//! Telemetry never blocks or perturbs a simulation: rings are bounded,
//! overflow is *counted* per subscriber (a `dropped` field on every
//! stream line — loss is explicit, never silent), and with zero
//! subscribers the produce path doesn't even construct the record, so
//! job outcomes are bit-identical to `repro` runs without the daemon.

pub mod client;
pub mod daemon;
pub mod protocol;

pub use daemon::{serve, DaemonHandle, DaemonOptions, EXIT_CANCELLED};
pub use protocol::{Request, SubmitSpec};

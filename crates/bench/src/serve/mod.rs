//! The live telemetry plane: `snaked`, a local daemon that queues
//! simulate/sweep jobs, runs them through the sweep supervisor, and
//! streams cycle-stamped telemetry to any number of subscribers.
//!
//! Four pieces:
//!
//! - [`protocol`] — the newline-delimited JSON wire format (built
//!   entirely on the dependency-free `snake_core::json` module): one
//!   request object per connection, one response line, and for `tail`
//!   a stream of window/event/progress lines ending in a `done` line.
//! - [`journal`] — the crash-consistent state journal and its replay:
//!   every accepted job, state transition, durable sub-job record, and
//!   mid-simulation checkpoint is appended (fsynced, torn-tail
//!   tolerant), so a `kill -9`'d daemon restarts exactly where it
//!   died: terminal jobs keep their bit-exact reports, unfinished jobs
//!   re-queue at their original priority, and mid-run simulations
//!   resume from their latest checkpoint.
//! - [`daemon`] — the server: a Unix-domain socket accept loop, a
//!   priority job queue with cancellation, per-client quotas
//!   (queued-job admission control and a running-job scheduler cap),
//!   per-job deadline slices (suspend-to-checkpoint, re-queue, resume),
//!   and a scheduler thread that runs each request through
//!   [`run_supervised`](crate::supervise::run_supervised) with a
//!   per-job [`TelemetryRing`](snake_sim::TelemetryRing) carrying
//!   window rows and trace events out of the simulation thread.
//! - [`client`] — the `snakectl` side: one-shot requests and the
//!   `tail` line pump (reconnectable via `ring`/`from`), reused
//!   verbatim by the end-to-end tests.
//!
//! Telemetry never blocks or perturbs a simulation: rings are bounded,
//! overflow is *counted* per subscriber (a `dropped` field on every
//! stream line — loss is explicit, never silent), a subscriber that
//! vanishes mid-stream just drops its subscription (counted in
//! `health`), and with zero subscribers the produce path doesn't even
//! construct the record, so job outcomes are bit-identical to `repro`
//! runs without the daemon. Journal write failures degrade the same
//! way: counted and surfaced in `status`/`health`, never fatal to the
//! running simulation, never silent.

pub mod client;
pub mod daemon;
pub mod journal;
pub mod protocol;

pub use daemon::{serve, DaemonHandle, DaemonOptions, EXIT_CANCELLED, EXIT_QUOTA};
pub use journal::{Journal, JournalEvent};
pub use protocol::{Request, SubmitSpec};

//! The `snaked` server: a Unix-socket accept loop, a priority job
//! queue with cancellation, and a single scheduler thread that runs
//! each submitted sweep through the supervisor while per-job telemetry
//! rings fan windows and events out to `tail` subscribers.
//!
//! Concurrency layout: connection handler threads only touch the
//! registry (submit / status / cancel / shutdown) or read rings
//! (`tail`); the scheduler thread is the only one that *runs*
//! simulations, so jobs execute strictly in priority order (FIFO
//! within a priority) and telemetry rings have exactly one producer —
//! the invariant the lock-light ring design depends on.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use snake_core::json::Value;
use snake_core::{MechanismReport, PrefetcherKind};
use snake_sim::{TelemetryRecord, TelemetryRing};
use snake_workloads::Benchmark;

use super::protocol::{
    done_line, err_line, ok_line, progress_line, record_line, stream_end_line, stream_line,
    Request, SubmitSpec,
};
use crate::runner::Harness;
use crate::supervise::{campaign, run_supervised, JobOutcome, JobSpec, Progress, SweepConfig};

/// Exit code `snakectl tail` reports for a cancelled job — distinct
/// from every supervisor and CLI code (0/2/3/4/5/6).
pub const EXIT_CANCELLED: i32 = 7;

/// Records per telemetry ring; at quick-harness rates a full event
/// stream overflows this, which is exactly what the drop accounting is
/// for — subscribers see the precise count of what they missed.
const RING_CAPACITY: usize = 65_536;

/// How long `tail` sleeps when a poll finds nothing new.
const TAIL_IDLE: Duration = Duration::from_millis(15);

/// Where `snaked` listens and journals, set by the binary's flags.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Unix-domain socket path (created on start, removed on shutdown).
    pub socket: PathBuf,
    /// Optional JSONL state journal: one `submitted` line per accepted
    /// job and one `"terminal":true` line per finished/cancelled job,
    /// so an orphan check is `count(submitted) == count(terminal)`.
    pub state_log: Option<PathBuf>,
}

/// Lifecycle of one submitted sweep.
#[derive(Debug)]
enum ReqState {
    /// Waiting in the priority queue.
    Queued,
    /// The scheduler is running it now.
    Running,
    /// Finished; holds the supervisor exit code and the report rows.
    Done {
        exit: i32,
        reports: Vec<(String, String, MechanismReport)>,
    },
    /// Cancelled before completion (queued or mid-run).
    Cancelled,
}

impl ReqState {
    fn label(&self) -> &'static str {
        match self {
            ReqState::Queued => "queued",
            ReqState::Running => "running",
            ReqState::Done { .. } => "done",
            ReqState::Cancelled => "cancelled",
        }
    }

    /// `(state label, exit code)` once terminal, `None` while live.
    fn terminal(&self) -> Option<(&'static str, i32)> {
        match self {
            ReqState::Done { exit, .. } => Some(("done", *exit)),
            ReqState::Cancelled => Some(("cancelled", EXIT_CANCELLED)),
            _ => None,
        }
    }
}

/// One submitted sweep: immutable plan plus live state.
struct JobEntry {
    id: u64,
    desc: String,
    priority: u64,
    harness: Harness,
    jobs: Vec<JobSpec>,
    events: bool,
    cancel: AtomicBool,
    progress: Arc<Progress>,
    /// One ring per supervised job, appended as each starts; `tail`
    /// subscribers walk this list in order. Rings are closed when
    /// their job ends, so drains observe completion, not silence.
    rings: Mutex<Vec<(String, TelemetryRing)>>,
    state: Mutex<ReqState>,
}

struct Registry {
    next_id: u64,
    /// `(id, priority)`, submission order; the scheduler pops the
    /// highest priority, earliest submitted.
    queue: Vec<(u64, u64)>,
    entries: BTreeMap<u64, Arc<JobEntry>>,
    shutdown: bool,
}

struct Shared {
    socket: PathBuf,
    registry: Mutex<Registry>,
    wake: Condvar,
    state_log: Option<Mutex<std::fs::File>>,
}

impl Shared {
    fn log(&self, event: &str, id: u64, terminal: Option<i32>) {
        let Some(f) = &self.state_log else { return };
        let mut fields = vec![
            ("event".to_string(), Value::str(event)),
            ("id".to_string(), Value::u64(id)),
        ];
        if let Some(exit) = terminal {
            fields.push(("terminal".into(), Value::Bool(true)));
            fields.push(("exit".into(), Value::u64(exit.max(0) as u64)));
        }
        let mut f = f.lock().unwrap();
        // Journal writes are best-effort: a full disk must not take
        // down running simulations.
        let _ = writeln!(f, "{}", Value::Obj(fields));
        let _ = f.flush();
    }
}

/// A running daemon; `join` blocks until shutdown completes.
pub struct DaemonHandle {
    accept: JoinHandle<()>,
    scheduler: JoinHandle<()>,
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonHandle").finish_non_exhaustive()
    }
}

impl DaemonHandle {
    /// Waits for the accept loop and scheduler to exit (they do after
    /// a `shutdown` request).
    pub fn join(self) {
        let _ = self.accept.join();
        let _ = self.scheduler.join();
    }
}

/// Starts the daemon: binds the socket, spawns the scheduler and the
/// accept loop, and returns immediately.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] when the socket cannot be
/// bound or the state journal cannot be created.
pub fn serve(opts: &DaemonOptions) -> io::Result<DaemonHandle> {
    // A stale socket file from a crashed daemon would make bind fail;
    // connecting to it distinguishes stale from live.
    if opts.socket.exists() {
        if UnixStream::connect(&opts.socket).is_ok() {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("a daemon is already listening on {}", opts.socket.display()),
            ));
        }
        std::fs::remove_file(&opts.socket)?;
    }
    let listener = UnixListener::bind(&opts.socket)?;
    let state_log = match &opts.state_log {
        Some(path) => Some(Mutex::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
        )),
        None => None,
    };
    let shared = Arc::new(Shared {
        socket: opts.socket.clone(),
        registry: Mutex::new(Registry {
            next_id: 1,
            queue: Vec::new(),
            entries: BTreeMap::new(),
            shutdown: false,
        }),
        wake: Condvar::new(),
        state_log,
    });

    let sched_shared = Arc::clone(&shared);
    let scheduler = std::thread::spawn(move || scheduler_loop(&sched_shared));

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.registry.lock().unwrap().shutdown {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conn_shared = Arc::clone(&accept_shared);
            std::thread::spawn(move || {
                let _ = handle_connection(&conn_shared, stream);
            });
        }
        let _ = std::fs::remove_file(&accept_shared.socket);
    });

    Ok(DaemonHandle { accept, scheduler })
}

/// Resolves a submit spec into a concrete plan, rejecting bad operands
/// before anything is queued.
fn resolve(spec: &SubmitSpec) -> Result<(Harness, Vec<JobSpec>, String), String> {
    let benches: Vec<Benchmark> = match &spec.benchmarks {
        Some(raw) => parse_list(raw, "benchmark")?,
        None => Benchmark::all().to_vec(),
    };
    let kinds: Vec<PrefetcherKind> = match &spec.mechanisms {
        Some(raw) => parse_list(raw, "mechanism")?,
        None => PrefetcherKind::all().to_vec(),
    };
    let mut harness = if spec.quick {
        Harness::quick()
    } else {
        Harness::standard()
    };
    if let Some(budget) = spec.budget {
        harness.cfg.cycle_budget = Some(snake_sim::Cycle(budget));
    }
    // Window rows are the tail stream's payload, so sampling is always
    // on; the default matches `pfdebug`'s windowed view.
    harness.cfg.metrics_window = Some(spec.window.unwrap_or(500));
    harness.validate().map_err(|e| e.to_string())?;
    let jobs = campaign(&benches, &kinds);
    if jobs.is_empty() {
        return Err("empty campaign: no benchmarks or no mechanisms".into());
    }
    let desc = format!(
        "{} jobs ({} × {}){}",
        jobs.len(),
        benches.len(),
        kinds.len(),
        if spec.quick { ", quick" } else { "" }
    );
    Ok((harness, jobs, desc))
}

fn parse_list<T>(raw: &str, what: &str) -> Result<Vec<T>, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let items: Result<Vec<T>, String> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().map_err(|e: T::Err| format!("{what}: {e}")))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("{what} list is empty"));
    }
    Ok(items)
}

/// Pops the runnable entry with the highest priority (FIFO within a
/// priority level), blocking until one exists or shutdown.
fn next_entry(shared: &Shared) -> Option<Arc<JobEntry>> {
    let mut reg = shared.registry.lock().unwrap();
    loop {
        if let Some(pos) = best_queued(&reg.queue) {
            let (id, _) = reg.queue.remove(pos);
            return Some(Arc::clone(&reg.entries[&id]));
        }
        if reg.shutdown {
            return None;
        }
        reg = shared.wake.wait(reg).unwrap();
    }
}

/// Index of the highest-priority, earliest-submitted queued job.
fn best_queued(queue: &[(u64, u64)]) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .max_by_key(|(i, (_, prio))| (*prio, std::cmp::Reverse(*i)))
        .map(|(i, _)| i)
}

fn scheduler_loop(shared: &Shared) {
    while let Some(entry) = next_entry(shared) {
        run_entry(shared, &entry);
    }
}

/// Runs one submitted sweep to its terminal state.
fn run_entry(shared: &Shared, entry: &JobEntry) {
    {
        // The cancel check and the Queued → Running transition must be
        // one atomic step: the cancel handler marks-and-logs terminal
        // under the same lock, so exactly one of us writes the
        // terminal journal line.
        let mut state = entry.state.lock().unwrap();
        if entry.cancel.load(Ordering::Relaxed) || !matches!(*state, ReqState::Queued) {
            return;
        }
        *state = ReqState::Running;
    }
    shared.log("running", entry.id, None);

    let cfg = SweepConfig {
        workers: 1,
        max_attempts: 2,
        progress: Some(Arc::clone(&entry.progress)),
        ..SweepConfig::default()
    };
    let runner = |job: &JobSpec, attempt: u32, _resume: Option<&Path>| {
        if entry.cancel.load(Ordering::Relaxed) {
            return Ok(crate::runner::JobRun::Cancelled);
        }
        let ring = TelemetryRing::new(RING_CAPACITY);
        entry.rings.lock().unwrap().push((job.id(), ring.clone()));
        let harness = if attempt == 1 {
            entry.harness.clone()
        } else {
            let mut retry = entry.harness.clone();
            retry.cfg.fault.seed =
                crate::supervise::retry_seed(cfg.retry_seed_base, &job.id(), attempt);
            retry
        };
        let result = harness.run_job_live(job.bench, job.kind, &ring, entry.events, &entry.cancel);
        // Closing lets tail subscribers distinguish "job over" from
        // "no data yet"; a retry gets a fresh ring.
        ring.close();
        result
    };
    let result = run_supervised(
        &entry.jobs,
        &cfg,
        &std::collections::HashMap::new(),
        None,
        runner,
    );

    let (state, exit) = if entry.cancel.load(Ordering::Relaxed) {
        ("cancelled", EXIT_CANCELLED)
    } else {
        ("done", result.exit_code())
    };
    let reports: Vec<(String, String, MechanismReport)> = result
        .outcomes
        .iter()
        .filter_map(|(job, o)| match o {
            JobOutcome::Completed { report, stop, .. } => {
                Some((job.id(), stop.clone(), report.clone()))
            }
            _ => None,
        })
        .collect();
    *entry.state.lock().unwrap() = if state == "cancelled" {
        ReqState::Cancelled
    } else {
        ReqState::Done { exit, reports }
    };
    shared.log(state, entry.id, Some(exit));
}

fn handle_connection(shared: &Shared, stream: UnixStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut out = stream;
    let request = match Request::parse(line.trim()) {
        Ok(r) => r,
        Err(e) => return writeln!(out, "{}", err_line(&e)),
    };
    match request {
        Request::Submit(spec) => handle_submit(shared, &spec, &mut out),
        Request::Status { id } => handle_status(shared, id, &mut out),
        Request::Cancel { id } => handle_cancel(shared, id, &mut out),
        Request::Tail { id } => handle_tail(shared, id, &mut out),
        Request::Shutdown => handle_shutdown(shared, &mut out),
    }
}

fn handle_submit(shared: &Shared, spec: &SubmitSpec, out: &mut UnixStream) -> io::Result<()> {
    let (harness, jobs, desc) = match resolve(spec) {
        Ok(plan) => plan,
        Err(e) => return writeln!(out, "{}", err_line(&e)),
    };
    let id = {
        let mut reg = shared.registry.lock().unwrap();
        if reg.shutdown {
            drop(reg);
            return writeln!(out, "{}", err_line("daemon is shutting down"));
        }
        let id = reg.next_id;
        reg.next_id += 1;
        let entry = Arc::new(JobEntry {
            id,
            desc,
            priority: spec.priority,
            harness,
            jobs,
            events: spec.events,
            cancel: AtomicBool::new(false),
            progress: Arc::new(Progress::default()),
            rings: Mutex::new(Vec::new()),
            state: Mutex::new(ReqState::Queued),
        });
        reg.entries.insert(id, entry);
        reg.queue.push((id, spec.priority));
        id
    };
    shared.log("submitted", id, None);
    shared.wake.notify_all();
    writeln!(out, "{}", ok_line(vec![("id".into(), Value::u64(id))]))
}

/// One job's status object.
fn status_json(entry: &JobEntry) -> Value {
    let state = entry.state.lock().unwrap();
    let mut fields = vec![
        ("id".to_string(), Value::u64(entry.id)),
        ("desc".to_string(), Value::str(&entry.desc)),
        ("priority".to_string(), Value::u64(entry.priority)),
        ("state".to_string(), Value::str(state.label())),
        ("progress".to_string(), entry.progress.snapshot().to_json()),
    ];
    if let ReqState::Done { exit, reports } = &*state {
        fields.push(("exit".into(), Value::u64((*exit).max(0) as u64)));
        fields.push((
            "reports".into(),
            Value::Arr(
                reports
                    .iter()
                    .map(|(job, stop, report)| {
                        Value::Obj(vec![
                            ("job".into(), Value::str(job)),
                            ("stop".into(), Value::str(stop)),
                            ("report".into(), report.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Value::Obj(fields)
}

fn handle_status(shared: &Shared, id: Option<u64>, out: &mut UnixStream) -> io::Result<()> {
    let reg = shared.registry.lock().unwrap();
    let line = match id {
        Some(id) => match reg.entries.get(&id) {
            Some(entry) => ok_line(vec![("job".into(), status_json(entry))]),
            None => err_line(&format!("no job {id}")),
        },
        None => ok_line(vec![(
            "jobs".into(),
            Value::Arr(reg.entries.values().map(|e| status_json(e)).collect()),
        )]),
    };
    drop(reg);
    writeln!(out, "{line}")
}

fn handle_cancel(shared: &Shared, id: u64, out: &mut UnixStream) -> io::Result<()> {
    let entry = {
        let reg = shared.registry.lock().unwrap();
        match reg.entries.get(&id) {
            Some(e) => Arc::clone(e),
            None => {
                drop(reg);
                return writeln!(out, "{}", err_line(&format!("no job {id}")));
            }
        }
    };
    entry.cancel.store(true, Ordering::Relaxed);
    let label = {
        let mut state = entry.state.lock().unwrap();
        match &*state {
            // Still queued: run_entry re-checks under this lock and
            // will not start it, so it is terminal right now.
            ReqState::Queued => {
                *state = ReqState::Cancelled;
                drop(state);
                shared.log("cancelled", id, Some(EXIT_CANCELLED));
                "cancelled"
            }
            // Running: the flag stops it within a cycle; the
            // scheduler marks and logs the terminal state.
            ReqState::Running => "cancelling",
            other => other.label(),
        }
    };
    writeln!(
        out,
        "{}",
        ok_line(vec![
            ("id".into(), Value::u64(id)),
            ("state".into(), Value::str(label)),
        ])
    )
}

fn handle_shutdown(shared: &Shared, out: &mut UnixStream) -> io::Result<()> {
    {
        let mut reg = shared.registry.lock().unwrap();
        reg.shutdown = true;
        reg.queue.clear();
        // Cancel every live entry, queued or running — including one
        // the scheduler popped but has not transitioned yet (its
        // Queued → Running step re-checks under the state lock).
        for (id, entry) in reg.entries.iter() {
            let mut state = entry.state.lock().unwrap();
            match &*state {
                ReqState::Queued => {
                    entry.cancel.store(true, Ordering::Relaxed);
                    *state = ReqState::Cancelled;
                    drop(state);
                    shared.log("cancelled", *id, Some(EXIT_CANCELLED));
                }
                ReqState::Running => entry.cancel.store(true, Ordering::Relaxed),
                _ => {}
            }
        }
    }
    shared.wake.notify_all();
    writeln!(out, "{}", ok_line(vec![]))?;
    // Unblock the accept loop so it observes the shutdown flag.
    let _ = UnixStream::connect(&shared.socket);
    Ok(())
}

/// Streams a job's telemetry until it reaches a terminal state:
/// `stream`/`window`/`event` lines per ring, `progress` lines on
/// change, then one `done` line with exact delivered/dropped totals.
fn handle_tail(shared: &Shared, id: u64, out: &mut UnixStream) -> io::Result<()> {
    let entry = {
        let reg = shared.registry.lock().unwrap();
        match reg.entries.get(&id) {
            Some(e) => Arc::clone(e),
            None => {
                drop(reg);
                return writeln!(out, "{}", err_line(&format!("no job {id}")));
            }
        }
    };
    writeln!(out, "{}", ok_line(vec![("id".into(), Value::u64(id))]))?;

    let mut ring_idx = 0usize;
    let mut current: Option<(String, snake_sim::Subscription<TelemetryRecord>)> = None;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut last_progress = None;
    loop {
        let snap = entry.progress.snapshot();
        if last_progress != Some(snap) {
            writeln!(out, "{}", progress_line(&snap))?;
            last_progress = Some(snap);
        }
        let mut advanced = false;
        if current.is_none() {
            let opened = {
                let rings = entry.rings.lock().unwrap();
                // Subscribe from sequence 0: a late subscriber gets
                // whatever the ring still holds, and the overwritten
                // prefix is *counted* (not silently absent) — the
                // first drain reports it in `dropped`.
                rings
                    .get(ring_idx)
                    .map(|(job, ring)| (job.clone(), ring.subscribe_from(0)))
            };
            if let Some((job, sub)) = opened {
                writeln!(out, "{}", stream_line(&job, sub.cursor()))?;
                current = Some((job, sub));
                advanced = true;
            }
        }
        if let Some((job, sub)) = &mut current {
            let drained = sub.drain();
            dropped += drained.dropped;
            if !drained.records.is_empty() {
                advanced = true;
            }
            for (k, rec) in drained.records.iter().enumerate() {
                writeln!(
                    out,
                    "{}",
                    record_line(job, drained.first_seq + k as u64, rec, dropped)
                )?;
                delivered += 1;
            }
            if drained.done {
                // After a complete drain the cursor sits one past the
                // last record the ring ever produced; publishing it
                // makes trailing drops verifiable by the client.
                writeln!(out, "{}", stream_end_line(job, sub.cursor()))?;
                current = None;
                ring_idx += 1;
                // Skip the idle sleep: the next ring may already exist.
                continue;
            }
        }
        if current.is_none() && ring_idx >= entry.rings.lock().unwrap().len() {
            if let Some((state, exit)) = entry.state.lock().unwrap().terminal() {
                let snap = entry.progress.snapshot();
                if last_progress != Some(snap) {
                    writeln!(out, "{}", progress_line(&snap))?;
                }
                return writeln!(out, "{}", done_line(state, exit, delivered, dropped));
            }
        }
        if !advanced {
            std::thread::sleep(TAIL_IDLE);
        }
    }
}

// Exercised end-to-end (daemon process, socket, client) in
// `tests/serve.rs`; unit tests here cover the pure pieces.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_pops_priority_then_fifo() {
        let queue = vec![(1, 0), (2, 5), (3, 5), (4, 1)];
        assert_eq!(best_queued(&queue), Some(1), "highest priority wins");
        let queue = vec![(7, 2), (8, 2)];
        assert_eq!(best_queued(&queue), Some(0), "FIFO within a priority");
        assert_eq!(best_queued(&[]), None);
    }

    #[test]
    fn resolve_rejects_bad_operands_and_defaults_sensibly() {
        let mut spec = SubmitSpec {
            quick: true,
            ..SubmitSpec::default()
        };
        let (harness, jobs, desc) = resolve(&spec).unwrap();
        assert_eq!(
            jobs.len(),
            Benchmark::all().len() * PrefetcherKind::all().len()
        );
        assert_eq!(harness.cfg.metrics_window, Some(500), "window always on");
        assert!(desc.contains("quick"));

        spec.benchmarks = Some("LPS".into());
        spec.mechanisms = Some("baseline,snake".into());
        spec.window = Some(200);
        spec.budget = Some(6000);
        let (harness, jobs, _) = resolve(&spec).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(harness.cfg.metrics_window, Some(200));
        assert_eq!(harness.cfg.cycle_budget, Some(snake_sim::Cycle(6000)));

        spec.benchmarks = Some("NOPE".into());
        assert!(resolve(&spec).unwrap_err().contains("benchmark"));
        spec.benchmarks = Some(",".into());
        assert!(resolve(&spec).unwrap_err().contains("empty"));
    }

    #[test]
    fn protocol_mentions_every_terminal_state() {
        assert_eq!(ReqState::Queued.terminal(), None);
        assert_eq!(ReqState::Running.terminal(), None);
        assert_eq!(
            ReqState::Cancelled.terminal(),
            Some(("cancelled", EXIT_CANCELLED))
        );
        let done = ReqState::Done {
            exit: 0,
            reports: Vec::new(),
        };
        assert_eq!(done.terminal(), Some(("done", 0)));
    }
}

//! The `snaked` server: a Unix-socket accept loop, a priority job
//! queue with cancellation, and a single scheduler thread that runs
//! each submitted sweep through the supervisor while per-job telemetry
//! rings fan windows and events out to `tail` subscribers.
//!
//! Concurrency layout: connection handler threads only touch the
//! registry (submit / status / cancel / health / shutdown) or read
//! rings (`tail`); the scheduler thread is the only one that *runs*
//! simulations, so jobs execute strictly in priority order (FIFO
//! within a priority) and telemetry rings have exactly one producer —
//! the invariant the lock-light ring design depends on.
//!
//! Crash safety: every state transition is journaled ([`journal`])
//! before the daemon acts on it being durable, and on startup the
//! journal is replayed — terminal jobs come back with their recorded
//! reports (bit-exact, via the lexeme-preserving json layer),
//! non-terminal jobs re-queue at their original priority, and sub-jobs
//! with a live mid-simulation checkpoint resume from it instead of
//! cycle zero. Combined with the simulator's deterministic
//! kill-anywhere snapshots, a `kill -9`'d daemon finishes its sweeps
//! byte-identically to one that was never killed (chaos-tested in
//! `tests/serve_chaos.rs`).
//!
//! Multi-tenancy: submits carry an optional client id; the daemon can
//! cap queued jobs per client (typed `"quota"` rejection → `snakectl`
//! exit [`EXIT_QUOTA`]) and cap concurrently running jobs per client
//! (the scheduler passes over a client at its running quota without
//! starving other clients). Per-job `deadline_ms` bounds a scheduling
//! slice: on expiry the running simulation suspends to a checkpoint,
//! the job re-queues behind its priority peers, and the next slice
//! resumes mid-simulation — cooperative time-sharing with zero lost
//! cycles.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use snake_core::json::Value;
use snake_core::{MechanismReport, PrefetcherKind};
use snake_sim::snapshot::Checkpoint;
use snake_sim::{TelemetryRecord, TelemetryRing};
use snake_workloads::Benchmark;

use super::journal::{self, Journal, JournalEvent};
use super::protocol::{
    done_line, err_line, err_line_coded, ok_line, progress_line, record_line, stream_end_line,
    stream_line, Request, SubmitSpec,
};
use crate::runner::Harness;
use crate::supervise::{
    campaign, run_supervised, ExecContext, JobExecutor, JobOutcome, JobRecord, JobSpec, Progress,
    SandboxLimits, SweepConfig,
};

/// Exit code `snakectl tail` reports for a cancelled job — distinct
/// from every supervisor and CLI code (0/2/3/4/5/6).
pub const EXIT_CANCELLED: i32 = 7;

/// Exit code `snakectl submit` reports for a quota rejection — the
/// typed admission-control refusal, distinct from every other code.
pub const EXIT_QUOTA: i32 = 8;

/// Records per telemetry ring; at quick-harness rates a full event
/// stream overflows this, which is exactly what the drop accounting is
/// for — subscribers see the precise count of what they missed.
const RING_CAPACITY: usize = 65_536;

/// How long `tail` sleeps when a poll finds nothing new.
const TAIL_IDLE: Duration = Duration::from_millis(15);

/// Where `snaked` listens and journals, set by the binary's flags.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Unix-domain socket path (created on start, removed on shutdown).
    pub socket: PathBuf,
    /// Optional JSONL state journal: one `submitted` line per accepted
    /// job and one `"terminal":true` line per finished/cancelled job
    /// (so an orphan check is `count(submitted) == count(terminal)`),
    /// plus running/requeued/record/checkpoint lines in between. The
    /// journal is what makes the daemon restartable: on startup it is
    /// replayed and unfinished jobs resume.
    pub state_log: Option<PathBuf>,
    /// Default mid-simulation checkpoint cadence (cycles) for daemon
    /// jobs, applied when the journal is enabled; per-submit
    /// `checkpoint_every` overrides it. `None` disables checkpointing
    /// unless a submit asks for it.
    pub checkpoint_every: Option<u64>,
    /// Max jobs one client may have *queued* at once; further submits
    /// are rejected with the typed `"quota"` code. `None` = unlimited.
    pub quota_queued: Option<usize>,
    /// Max jobs one client may have *running* at once; the scheduler
    /// passes over that client's queued jobs until a slot frees.
    /// `None` = unlimited.
    pub quota_running: Option<usize>,
    /// Scheduler worker threads — how many sweeps run concurrently.
    /// Must be at least 1; a running quota only has teeth with more
    /// than one worker (one worker never runs two jobs at once).
    pub workers: usize,
    /// Run every submitted job in a sandboxed subprocess (see
    /// [`JobExecutor`]): a job that aborts, segfaults, or is
    /// OOM-killed is quarantined with a typed crash kind instead of
    /// taking the daemon (and every co-tenant's jobs) down. Individual
    /// submits can also opt in per-job.
    pub isolate: bool,
}

/// Lifecycle of one submitted sweep.
#[derive(Debug)]
enum ReqState {
    /// Waiting in the priority queue.
    Queued,
    /// The scheduler is running it now.
    Running,
    /// Finished; holds the supervisor exit code, the report rows, and
    /// a note per quarantined sub-job (crash kind + stderr excerpt).
    Done {
        exit: i32,
        reports: Vec<(String, String, MechanismReport)>,
        failures: Vec<QuarantineNote>,
    },
    /// Cancelled before completion (queued or mid-run).
    Cancelled,
}

/// What `snakectl status` shows for one quarantined sub-job: enough to
/// diagnose the quarantine without grepping the journal.
#[derive(Debug, Clone)]
struct QuarantineNote {
    job: String,
    attempts: u32,
    error: String,
    /// Typed crash classification label, when the failure was a
    /// process death or panic.
    crash: Option<String>,
    /// Last stderr excerpt from a crashed sandboxed child.
    stderr: Option<String>,
}

impl QuarantineNote {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("job".to_string(), Value::str(&self.job)),
            ("attempts".to_string(), Value::u64(u64::from(self.attempts))),
            ("error".to_string(), Value::str(&self.error)),
        ];
        if let Some(kind) = &self.crash {
            fields.push(("crash".into(), Value::str(kind)));
        }
        if let Some(excerpt) = &self.stderr {
            fields.push(("stderr".into(), Value::str(excerpt)));
        }
        Value::Obj(fields)
    }
}

impl ReqState {
    fn label(&self) -> &'static str {
        match self {
            ReqState::Queued => "queued",
            ReqState::Running => "running",
            ReqState::Done { .. } => "done",
            ReqState::Cancelled => "cancelled",
        }
    }

    /// `(state label, exit code)` once terminal, `None` while live.
    fn terminal(&self) -> Option<(&'static str, i32)> {
        match self {
            ReqState::Done { exit, .. } => Some(("done", *exit)),
            ReqState::Cancelled => Some(("cancelled", EXIT_CANCELLED)),
            _ => None,
        }
    }
}

/// One submitted sweep: immutable plan plus live state.
struct JobEntry {
    id: u64,
    desc: String,
    priority: u64,
    client: Option<String>,
    harness: Harness,
    jobs: Vec<JobSpec>,
    events: bool,
    /// Run this sweep's jobs in sandboxed subprocesses.
    isolate: bool,
    /// Wall budget per scheduling slice; expiry suspends-to-checkpoint
    /// and re-queues instead of finishing the sweep in one sitting.
    deadline: Option<Duration>,
    cancel: AtomicBool,
    progress: Arc<Progress>,
    /// One ring per supervised job *attempt*, appended as each starts
    /// (across every scheduling slice); `tail` subscribers walk this
    /// list in order. Rings are closed when their job ends, so drains
    /// observe completion, not silence.
    rings: Mutex<Vec<(String, TelemetryRing)>>,
    state: Mutex<ReqState>,
    /// Durable per-sub-job records carried across scheduling slices
    /// (and across daemon restarts): the supervisor replays these
    /// instead of re-running finished work.
    recovered: Mutex<HashMap<String, JobRecord>>,
    /// Checkpoint artifacts currently registered in the journal, keyed
    /// by sub-job id. Cleared (file removed + journaled) the moment a
    /// sub-job completes or the sweep is cancelled, so a cancel leaves
    /// no stray checkpoint registered.
    live_ckpts: Mutex<HashMap<String, PathBuf>>,
}

struct Registry {
    next_id: u64,
    /// `(id, priority)`, submission order; the scheduler pops the
    /// highest priority, earliest submitted.
    queue: Vec<(u64, u64)>,
    entries: BTreeMap<u64, Arc<JobEntry>>,
    shutdown: bool,
}

struct Shared {
    socket: PathBuf,
    registry: Mutex<Registry>,
    wake: Condvar,
    journal: Option<Journal>,
    /// Default checkpoint cadence (see [`DaemonOptions`]).
    checkpoint_every: Option<u64>,
    quota_queued: Option<usize>,
    quota_running: Option<usize>,
    /// Tail subscribers that vanished mid-stream (write failure); the
    /// simulation never notices — the subscription is just dropped —
    /// but the count is surfaced in `health`.
    tails_disconnected: AtomicU64,
    /// Mid-simulation checkpoints made durable since startup.
    checkpoints_written: AtomicU64,
    /// The historical in-thread executor (non-isolated submits).
    exec_in_thread: Arc<JobExecutor>,
    /// The subprocess sandbox executor, shared across every isolated
    /// sweep so one spawn failure degrades the daemon with one sticky
    /// flag (surfaced as `exec_degraded` in `health`).
    exec_sandbox: Arc<JobExecutor>,
    /// Whether the daemon isolates every submit (`snaked --isolate`).
    isolate_all: bool,
}

impl Shared {
    fn journal(&self, event: &JournalEvent) {
        if let Some(j) = &self.journal {
            j.append(event);
        }
    }

    fn journal_terminal(&self, id: u64, state: &str, exit: i32) {
        self.journal(&JournalEvent::Terminal {
            id,
            state: state.to_string(),
            exit,
        });
    }

    /// `(label, degraded, errors)` for status/health lines.
    fn journal_health(&self) -> (&'static str, bool, u64) {
        match &self.journal {
            Some(j) if j.degraded() => ("degraded", true, j.errors()),
            Some(_) => ("ok", false, 0),
            None => ("disabled", false, 0),
        }
    }
}

/// Removes one sub-job's checkpoint artifact and journals the clear.
fn clear_checkpoint(shared: &Shared, entry: &JobEntry, job: &str) {
    let removed = entry.live_ckpts.lock().unwrap().remove(job);
    if let Some(path) = removed {
        let _ = std::fs::remove_file(&path);
        shared.journal(&JournalEvent::CheckpointCleared {
            id: entry.id,
            job: job.to_string(),
        });
    }
}

/// Removes every live checkpoint of a sweep (cancellation path).
fn clear_all_checkpoints(shared: &Shared, entry: &JobEntry) {
    let drained: Vec<(String, PathBuf)> = entry.live_ckpts.lock().unwrap().drain().collect();
    for (job, path) in drained {
        let _ = std::fs::remove_file(&path);
        shared.journal(&JournalEvent::CheckpointCleared { id: entry.id, job });
    }
}

/// The sibling file a daemon job's mid-simulation checkpoint goes to:
/// `<journal file name>.j<id>.<sub-job id with '/' → '-'>.ckpt`, in
/// the journal's directory — daemon state and simulation state travel
/// together, mirroring the sweep manifest convention.
fn checkpoint_path(journal_path: &Path, id: u64, job_id: &str) -> PathBuf {
    let stem = journal_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snaked-state".into());
    journal_path.with_file_name(format!("{stem}.j{id}.{}.ckpt", job_id.replace('/', "-")))
}

/// A running daemon; `join` blocks until shutdown completes.
pub struct DaemonHandle {
    accept: JoinHandle<()>,
    schedulers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonHandle").finish_non_exhaustive()
    }
}

impl DaemonHandle {
    /// Waits for the accept loop and every scheduler worker to exit
    /// (they do after a `shutdown` request).
    pub fn join(self) {
        let _ = self.accept.join();
        for worker in self.schedulers {
            let _ = worker.join();
        }
    }
}

/// Starts the daemon: binds the socket, replays the state journal
/// (re-queueing unfinished jobs, resurrecting mid-run simulations from
/// their checkpoints), spawns the scheduler workers and the accept
/// loop, and returns immediately.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] when the socket cannot be
/// bound, a quota or worker count is zero, the state journal cannot be
/// opened,
/// or the journal is corrupt (mid-file corruption — a torn tail is
/// healed silently).
pub fn serve(opts: &DaemonOptions) -> io::Result<DaemonHandle> {
    if opts.quota_queued == Some(0) || opts.quota_running == Some(0) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "quotas must be at least 1 (omit the flag for unlimited)",
        ));
    }
    if opts.workers == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "the daemon needs at least 1 scheduler worker",
        ));
    }
    // A stale socket file from a crashed daemon would make bind fail;
    // connecting to it distinguishes stale from live.
    if opts.socket.exists() {
        if UnixStream::connect(&opts.socket).is_ok() {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("a daemon is already listening on {}", opts.socket.display()),
            ));
        }
        std::fs::remove_file(&opts.socket)?;
    }
    let listener = UnixListener::bind(&opts.socket)?;
    let mut registry = Registry {
        next_id: 1,
        queue: Vec::new(),
        entries: BTreeMap::new(),
        shutdown: false,
    };
    let journal = match &opts.state_log {
        Some(path) => {
            // Replay only regular files: a device node (/dev/null,
            // /dev/full) has no replayable history — and reading one
            // could block forever.
            let recovered = if std::fs::metadata(path)
                .map(|m| m.is_file())
                .unwrap_or(false)
            {
                let events = journal::load(path)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                journal::recover(&events)
            } else {
                journal::Recovered::default()
            };
            let j = Journal::open_append(path)?;
            registry.next_id = recovered.next_id.max(1);
            for job in recovered.jobs {
                restore_job(&j, job, opts.checkpoint_every, opts.isolate, &mut registry);
            }
            Some(j)
        }
        None => None,
    };
    let shared = Arc::new(Shared {
        socket: opts.socket.clone(),
        registry: Mutex::new(registry),
        wake: Condvar::new(),
        journal,
        checkpoint_every: opts.checkpoint_every,
        quota_queued: opts.quota_queued,
        quota_running: opts.quota_running,
        tails_disconnected: AtomicU64::new(0),
        checkpoints_written: AtomicU64::new(0),
        exec_in_thread: Arc::new(JobExecutor::in_thread()),
        exec_sandbox: Arc::new(JobExecutor::sandbox(SandboxLimits::default())),
        isolate_all: opts.isolate,
    });

    let schedulers = (0..opts.workers)
        .map(|_| {
            let sched_shared = Arc::clone(&shared);
            std::thread::spawn(move || scheduler_loop(&sched_shared))
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.registry.lock().unwrap().shutdown {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conn_shared = Arc::clone(&accept_shared);
            std::thread::spawn(move || {
                let _ = handle_connection(&conn_shared, stream);
            });
        }
        let _ = std::fs::remove_file(&accept_shared.socket);
    });

    Ok(DaemonHandle { accept, schedulers })
}

/// Reconstructs one journaled job into the registry: terminal jobs
/// come back with their recorded reports, non-terminal jobs re-queue
/// at their original priority with validated resume checkpoints.
fn restore_job(
    j: &Journal,
    job: journal::RecoveredJob,
    default_every: Option<u64>,
    daemon_isolate: bool,
    registry: &mut Registry,
) {
    let id = job.id;
    let plan = match resolve(&job.spec, true, default_every, daemon_isolate) {
        Ok(plan) => plan,
        Err(why) => {
            // A journal from an incompatible build: the job cannot be
            // re-planned. Balance its `submitted` line and move on —
            // never fail the whole recovery for one bad entry.
            if job.terminal.is_none() {
                j.append(&JournalEvent::Terminal {
                    id,
                    state: "cancelled".into(),
                    exit: EXIT_CANCELLED,
                });
            }
            registry.entries.insert(
                id,
                Arc::new(JobEntry {
                    id,
                    desc: format!("unrecoverable: {why}"),
                    priority: job.spec.priority,
                    client: job.spec.client.clone(),
                    harness: Harness::quick(),
                    jobs: Vec::new(),
                    events: false,
                    isolate: false,
                    deadline: None,
                    cancel: AtomicBool::new(true),
                    progress: Arc::new(Progress::default()),
                    rings: Mutex::new(Vec::new()),
                    state: Mutex::new(ReqState::Cancelled),
                    recovered: Mutex::new(HashMap::new()),
                    live_ckpts: Mutex::new(HashMap::new()),
                }),
            );
            return;
        }
    };
    let mut records = job.records;
    let mut live: HashMap<String, PathBuf> = job
        .live_checkpoints
        .iter()
        .map(|(k, v)| (k.clone(), PathBuf::from(v)))
        .collect();
    let state = match &job.terminal {
        Some((state, exit)) => {
            // Terminal before the crash: nothing resumes, so any
            // checkpoint artifact still registered is stale.
            for (jid, path) in live.drain() {
                let _ = std::fs::remove_file(&path);
                j.append(&JournalEvent::CheckpointCleared { id, job: jid });
            }
            if state == "cancelled" {
                ReqState::Cancelled
            } else {
                // Reports in campaign order, exactly how a live run
                // publishes them — recovery must not reorder bytes.
                let reports = plan
                    .jobs
                    .iter()
                    .filter_map(|js| match records.get(&js.id()) {
                        Some(JobRecord::Completed { stop, report, .. }) => {
                            Some((js.id(), stop.clone(), report.clone()))
                        }
                        _ => None,
                    })
                    .collect();
                let failures = plan
                    .jobs
                    .iter()
                    .filter_map(|js| match records.get(&js.id()) {
                        Some(JobRecord::Quarantined {
                            attempts,
                            error,
                            crash,
                            stderr,
                            ..
                        }) => Some(QuarantineNote {
                            job: js.id(),
                            attempts: *attempts,
                            error: error.clone(),
                            crash: crash.clone(),
                            stderr: stderr.clone(),
                        }),
                        _ => None,
                    })
                    .collect();
                ReqState::Done {
                    exit: *exit,
                    reports,
                    failures,
                }
            }
        }
        None => ReqState::Queued,
    };
    let queued = matches!(state, ReqState::Queued);
    if queued {
        // A resume checkpoint must actually load (schema, crc, and
        // fingerprint checked); an unusable one means that sub-job
        // simply re-runs from cycle zero — deterministically, so the
        // final bytes are unaffected.
        records.retain(|jid, rec| match rec {
            JobRecord::Suspended { checkpoint, .. } => {
                if Checkpoint::load(Path::new(checkpoint)).is_ok() {
                    true
                } else {
                    if let Some(p) = live.remove(jid) {
                        let _ = std::fs::remove_file(&p);
                        j.append(&JournalEvent::CheckpointCleared {
                            id,
                            job: jid.clone(),
                        });
                    }
                    false
                }
            }
            _ => true,
        });
        // A checkpoint superseded by a completed/quarantined record is
        // dead weight: clear it so the journal never re-resurrects it.
        let stale: Vec<String> = live
            .keys()
            .filter(|jid| !matches!(records.get(*jid), Some(JobRecord::Suspended { .. })))
            .cloned()
            .collect();
        for jid in stale {
            if let Some(p) = live.remove(&jid) {
                let _ = std::fs::remove_file(&p);
                j.append(&JournalEvent::CheckpointCleared { id, job: jid });
            }
        }
    }
    let entry = Arc::new(JobEntry {
        id,
        desc: plan.desc,
        priority: job.spec.priority,
        client: job.spec.client.clone(),
        harness: plan.harness,
        jobs: plan.jobs,
        events: job.spec.events,
        isolate: plan.isolate,
        deadline: job.spec.deadline_ms.map(Duration::from_millis),
        cancel: AtomicBool::new(false),
        progress: Arc::new(Progress::default()),
        rings: Mutex::new(Vec::new()),
        state: Mutex::new(state),
        recovered: Mutex::new(records),
        live_ckpts: Mutex::new(live),
    });
    if queued {
        registry.queue.push((id, entry.priority));
        j.append(&JournalEvent::Requeued { id });
    }
    registry.entries.insert(id, entry);
}

/// A resolved submit: the concrete harness and job list to run.
#[derive(Debug)]
struct Plan {
    harness: Harness,
    jobs: Vec<JobSpec>,
    desc: String,
    /// Whether this sweep runs sandboxed (per-submit or daemon-wide).
    isolate: bool,
}

/// Resolves a submit spec into a concrete plan, rejecting bad operands
/// before anything is queued. `journaled` gates the checkpoint/deadline
/// features: without a journal there is nowhere durable to register
/// checkpoints, so both are refused rather than silently ignored.
/// `daemon_isolate` forces sandboxing for every submit; the combination
/// of isolation and the full event stream is refused because trace
/// events do not round-trip the child protocol losslessly (window rows
/// do).
fn resolve(
    spec: &SubmitSpec,
    journaled: bool,
    default_every: Option<u64>,
    daemon_isolate: bool,
) -> Result<Plan, String> {
    let isolate = spec.isolate || daemon_isolate;
    if isolate && spec.events {
        return Err(
            "\"events\" and \"isolate\" are mutually exclusive: a sandboxed \
             child streams metric windows but not the full trace-event \
             stream (submit without events, or without isolate)"
                .into(),
        );
    }
    let benches: Vec<Benchmark> = match &spec.benchmarks {
        Some(raw) => parse_list(raw, "benchmark")?,
        None => Benchmark::all().to_vec(),
    };
    let kinds: Vec<PrefetcherKind> = match &spec.mechanisms {
        Some(raw) => parse_list(raw, "mechanism")?,
        None => PrefetcherKind::all().to_vec(),
    };
    let mut harness = if spec.quick {
        Harness::quick()
    } else {
        Harness::standard()
    };
    if let Some(budget) = spec.budget {
        harness.cfg.cycle_budget = Some(snake_sim::Cycle(budget));
    }
    // Window rows are the tail stream's payload, so sampling is always
    // on; the default matches `pfdebug`'s windowed view.
    harness.cfg.metrics_window = Some(spec.window.unwrap_or(500));
    if !journaled && spec.checkpoint_every.is_some() {
        return Err("checkpointing requires the daemon to run with --state \
             (there is no journal to register checkpoints in)"
            .into());
    }
    let every = if journaled {
        spec.checkpoint_every.or(default_every)
    } else {
        None
    };
    harness.cfg.checkpoint_every = every;
    if spec.deadline_ms == Some(0) {
        return Err("\"deadline_ms\" must be positive".into());
    }
    if spec.deadline_ms.is_some() && every.is_none() {
        return Err(
            "a per-job deadline requires checkpointing: run the daemon with \
             --state and --checkpoint-every, or pass checkpoint_every on submit"
                .into(),
        );
    }
    harness.validate().map_err(|e| e.to_string())?;
    let jobs = campaign(&benches, &kinds);
    if jobs.is_empty() {
        return Err("empty campaign: no benchmarks or no mechanisms".into());
    }
    let desc = format!(
        "{} jobs ({} × {}){}",
        jobs.len(),
        benches.len(),
        kinds.len(),
        if spec.quick { ", quick" } else { "" }
    );
    Ok(Plan {
        harness,
        jobs,
        desc,
        isolate,
    })
}

fn parse_list<T>(raw: &str, what: &str) -> Result<Vec<T>, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let items: Result<Vec<T>, String> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().map_err(|e: T::Err| format!("{what}: {e}")))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("{what} list is empty"));
    }
    Ok(items)
}

/// Queue ids whose client is at its running quota right now — the
/// scheduler passes over them without starving anybody else.
fn quota_blocked(reg: &Registry, quota_running: Option<usize>) -> HashSet<u64> {
    let Some(max) = quota_running else {
        return HashSet::new();
    };
    let mut running: HashMap<&Option<String>, usize> = HashMap::new();
    for e in reg.entries.values() {
        if matches!(*e.state.lock().unwrap(), ReqState::Running) {
            *running.entry(&e.client).or_insert(0) += 1;
        }
    }
    reg.queue
        .iter()
        .filter_map(|(id, _)| {
            let e = reg.entries.get(id)?;
            (running.get(&e.client).copied().unwrap_or(0) >= max).then_some(*id)
        })
        .collect()
}

/// Pops the runnable entry with the highest priority (FIFO within a
/// priority level, quota-blocked clients passed over), blocking until
/// one exists or shutdown.
fn next_entry(shared: &Shared) -> Option<Arc<JobEntry>> {
    let mut reg = shared.registry.lock().unwrap();
    loop {
        let blocked = quota_blocked(&reg, shared.quota_running);
        if let Some(pos) = best_queued(&reg.queue, &blocked) {
            let (id, _) = reg.queue.remove(pos);
            return Some(Arc::clone(&reg.entries[&id]));
        }
        if reg.shutdown {
            return None;
        }
        reg = shared.wake.wait(reg).unwrap();
    }
}

/// Index of the highest-priority, earliest-submitted queued job that
/// is not quota-blocked.
fn best_queued(queue: &[(u64, u64)], blocked: &HashSet<u64>) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .filter(|(_, (id, _))| !blocked.contains(id))
        .max_by_key(|(i, (_, prio))| (*prio, std::cmp::Reverse(*i)))
        .map(|(i, _)| i)
}

fn scheduler_loop(shared: &Shared) {
    while let Some(entry) = next_entry(shared) {
        run_entry(shared, &entry);
    }
}

/// Marks an entry cancelled, clears its checkpoint artifacts, and
/// journals the terminal line. The caller must have observed a state
/// that makes it the unique finalizer.
fn finalize_cancelled(shared: &Shared, entry: &JobEntry) {
    clear_all_checkpoints(shared, entry);
    *entry.state.lock().unwrap() = ReqState::Cancelled;
    shared.journal_terminal(entry.id, "cancelled", EXIT_CANCELLED);
    shared.wake.notify_all();
}

/// Runs one scheduling slice of a submitted sweep: to a terminal state
/// when it finishes (or is cancelled), or back to the queue when its
/// per-slice deadline suspends it mid-simulation.
fn run_entry(shared: &Shared, entry: &JobEntry) {
    {
        // The cancel check and the Queued → Running transition must be
        // one atomic step: the cancel handler marks-and-logs terminal
        // under the same lock, so exactly one of us writes the
        // terminal journal line.
        let mut state = entry.state.lock().unwrap();
        if !matches!(*state, ReqState::Queued) {
            return;
        }
        if entry.cancel.load(Ordering::Relaxed) {
            // Cancelled after a requeue put it back in the queue (the
            // cancel handler saw Running and left finalizing to us).
            *state = ReqState::Cancelled;
            drop(state);
            clear_all_checkpoints(shared, entry);
            shared.journal_terminal(entry.id, "cancelled", EXIT_CANCELLED);
            shared.wake.notify_all();
            return;
        }
        *state = ReqState::Running;
    }
    shared.journal(&JournalEvent::Running { id: entry.id });

    let cfg = SweepConfig {
        workers: 1,
        max_attempts: 2,
        progress: Some(Arc::clone(&entry.progress)),
        // The per-slice wall budget: jobs not yet claimed when it
        // expires are skipped (the supervisor's exit-4 path) and the
        // whole sweep re-queues below.
        wall_deadline: entry.deadline,
        ..SweepConfig::default()
    };
    let slice_deadline = entry.deadline.map(|d| Instant::now() + d);
    let ckpt_base = match &shared.journal {
        Some(j) if entry.harness.cfg.checkpoint_every.is_some() => Some(j.path().to_path_buf()),
        _ => None,
    };
    let runner = |job: &JobSpec, attempt: u32, resume: Option<&Path>| {
        if entry.cancel.load(Ordering::Relaxed) {
            return Ok(crate::runner::JobRun::Cancelled);
        }
        let ring = TelemetryRing::new(RING_CAPACITY);
        entry.rings.lock().unwrap().push((job.id(), ring.clone()));
        let harness = if attempt == 1 {
            entry.harness.clone()
        } else {
            let mut retry = entry.harness.clone();
            retry.cfg.fault.seed =
                crate::supervise::retry_seed(cfg.retry_seed_base, &job.id(), attempt);
            retry
        };
        let jid = job.id();
        let ckpt_path = ckpt_base
            .as_ref()
            .map(|b| checkpoint_path(b, entry.id, &jid));
        let executor = if entry.isolate {
            &shared.exec_sandbox
        } else {
            &shared.exec_in_thread
        };
        let ctx = ExecContext {
            resume_from: resume,
            checkpoint_to: ckpt_path.as_deref(),
            deadline: slice_deadline,
            cancel: Some(&entry.cancel),
            ring: Some(&ring),
            include_events: entry.events,
            ..ExecContext::default()
        };
        let result = executor.run(&harness, job, &ctx, &mut |cycle, _bytes| {
            // A checkpoint is durable on disk the moment this
            // fires; register it before anything can crash.
            let Some(p) = &ckpt_path else { return };
            shared.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            entry
                .live_ckpts
                .lock()
                .unwrap()
                .insert(jid.clone(), p.clone());
            shared.journal(&JournalEvent::Checkpoint {
                id: entry.id,
                job: jid.clone(),
                cycle,
                path: p.display().to_string(),
            });
        });
        // Closing lets tail subscribers distinguish "job over" from
        // "no data yet"; a retry gets a fresh ring.
        ring.close();
        result
    };
    let recovered_at_start = entry.recovered.lock().unwrap().clone();
    let result = run_supervised(&entry.jobs, &cfg, &recovered_at_start, None, runner);

    // Journal every record that became durable this slice (replayed
    // ones are already in the journal — appending them again would
    // make recovery quadratic) and drop checkpoints of finished jobs.
    {
        let mut recovered = entry.recovered.lock().unwrap();
        for (job, outcome) in &result.outcomes {
            let jid = job.id();
            let Some(rec) = outcome.to_record(jid.clone()) else {
                continue;
            };
            if recovered.get(&jid) != Some(&rec) {
                shared.journal(&JournalEvent::Job {
                    id: entry.id,
                    record: rec.clone(),
                });
                recovered.insert(jid.clone(), rec.clone());
            }
            if !matches!(rec, JobRecord::Suspended { .. }) {
                clear_checkpoint(shared, entry, &jid);
            }
        }
    }

    if entry.cancel.load(Ordering::Relaxed) {
        finalize_cancelled(shared, entry);
        return;
    }
    let unfinished = result
        .outcomes
        .iter()
        .any(|(_, o)| matches!(o, JobOutcome::Skipped { .. } | JobOutcome::Suspended { .. }));
    if unfinished {
        // The slice deadline hit: suspended state is durable, so the
        // sweep goes back to the queue at its original priority and
        // the next slice resumes mid-simulation.
        let mut reg = shared.registry.lock().unwrap();
        if reg.shutdown || entry.cancel.load(Ordering::Relaxed) {
            drop(reg);
            finalize_cancelled(shared, entry);
            return;
        }
        *entry.state.lock().unwrap() = ReqState::Queued;
        reg.queue.push((entry.id, entry.priority));
        drop(reg);
        shared.journal(&JournalEvent::Requeued { id: entry.id });
        shared.wake.notify_all();
        return;
    }

    let exit = result.exit_code();
    let reports: Vec<(String, String, MechanismReport)> = result
        .outcomes
        .iter()
        .filter_map(|(job, o)| match o {
            JobOutcome::Completed { report, stop, .. } => {
                Some((job.id(), stop.clone(), report.clone()))
            }
            _ => None,
        })
        .collect();
    let failures: Vec<QuarantineNote> = result
        .outcomes
        .iter()
        .filter_map(|(job, o)| match o {
            JobOutcome::Crashed {
                message,
                attempts,
                crash,
                stderr,
            } => Some(QuarantineNote {
                job: job.id(),
                attempts: *attempts,
                error: message.clone(),
                crash: crash.map(|k| k.label()),
                stderr: stderr.clone(),
            }),
            _ => None,
        })
        .collect();
    *entry.state.lock().unwrap() = ReqState::Done {
        exit,
        reports,
        failures,
    };
    shared.journal_terminal(entry.id, "done", exit);
    shared.wake.notify_all();
}

fn handle_connection(shared: &Shared, stream: UnixStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut out = stream;
    let request = match Request::parse(line.trim()) {
        Ok(r) => r,
        Err(e) => return writeln!(out, "{}", err_line(&e)),
    };
    match request {
        Request::Submit(spec) => handle_submit(shared, &spec, &mut out),
        Request::Status { id } => handle_status(shared, id, &mut out),
        Request::Cancel { id } => handle_cancel(shared, id, &mut out),
        Request::Tail { id, ring, from } => handle_tail(shared, id, ring, from, &mut out),
        Request::Health => handle_health(shared, &mut out),
        Request::Shutdown => handle_shutdown(shared, &mut out),
    }
}

fn handle_submit(shared: &Shared, spec: &SubmitSpec, out: &mut UnixStream) -> io::Result<()> {
    let plan = match resolve(
        spec,
        shared.journal.is_some(),
        shared.checkpoint_every,
        shared.isolate_all,
    ) {
        Ok(plan) => plan,
        Err(e) => return writeln!(out, "{}", err_line(&e)),
    };
    let id = {
        let mut reg = shared.registry.lock().unwrap();
        if reg.shutdown {
            drop(reg);
            return writeln!(out, "{}", err_line("daemon is shutting down"));
        }
        if let Some(max) = shared.quota_queued {
            let queued = reg
                .entries
                .values()
                .filter(|e| {
                    e.client == spec.client && matches!(*e.state.lock().unwrap(), ReqState::Queued)
                })
                .count();
            if queued >= max {
                let who = spec.client.as_deref().unwrap_or("(anonymous)");
                drop(reg);
                return writeln!(
                    out,
                    "{}",
                    err_line_coded(
                        &format!("client {who:?} already has {queued} queued jobs (quota {max})"),
                        "quota",
                    )
                );
            }
        }
        let id = reg.next_id;
        reg.next_id += 1;
        let entry = Arc::new(JobEntry {
            id,
            desc: plan.desc,
            priority: spec.priority,
            client: spec.client.clone(),
            harness: plan.harness,
            jobs: plan.jobs,
            events: spec.events,
            isolate: plan.isolate,
            deadline: spec.deadline_ms.map(Duration::from_millis),
            cancel: AtomicBool::new(false),
            progress: Arc::new(Progress::default()),
            rings: Mutex::new(Vec::new()),
            state: Mutex::new(ReqState::Queued),
            recovered: Mutex::new(HashMap::new()),
            live_ckpts: Mutex::new(HashMap::new()),
        });
        reg.entries.insert(id, entry);
        reg.queue.push((id, spec.priority));
        id
    };
    shared.journal(&JournalEvent::Submitted {
        id,
        spec: spec.clone(),
    });
    shared.wake.notify_all();
    writeln!(out, "{}", ok_line(vec![("id".into(), Value::u64(id))]))
}

/// One job's status object.
fn status_json(entry: &JobEntry) -> Value {
    let state = entry.state.lock().unwrap();
    let mut fields = vec![
        ("id".to_string(), Value::u64(entry.id)),
        ("desc".to_string(), Value::str(&entry.desc)),
        ("priority".to_string(), Value::u64(entry.priority)),
        ("state".to_string(), Value::str(state.label())),
        ("progress".to_string(), entry.progress.snapshot().to_json()),
    ];
    if let Some(client) = &entry.client {
        fields.push(("client".into(), Value::str(client)));
    }
    if let ReqState::Done {
        exit,
        reports,
        failures,
    } = &*state
    {
        fields.push(("exit".into(), Value::u64((*exit).max(0) as u64)));
        fields.push((
            "reports".into(),
            Value::Arr(
                reports
                    .iter()
                    .map(|(job, stop, report)| {
                        Value::Obj(vec![
                            ("job".into(), Value::str(job)),
                            ("stop".into(), Value::str(stop)),
                            ("report".into(), report.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ));
        if !failures.is_empty() {
            fields.push((
                "quarantined".into(),
                Value::Arr(failures.iter().map(QuarantineNote::to_json).collect()),
            ));
        }
    }
    Value::Obj(fields)
}

fn handle_status(shared: &Shared, id: Option<u64>, out: &mut UnixStream) -> io::Result<()> {
    let reg = shared.registry.lock().unwrap();
    let (journal_state, degraded, errors) = shared.journal_health();
    let line = match id {
        Some(id) => match reg.entries.get(&id) {
            Some(entry) => ok_line(vec![
                ("job".into(), status_json(entry)),
                ("journal".into(), Value::str(journal_state)),
                ("journal_degraded".into(), Value::Bool(degraded)),
                ("journal_errors".into(), Value::u64(errors)),
            ]),
            None => err_line(&format!("no job {id}")),
        },
        None => ok_line(vec![
            (
                "jobs".into(),
                Value::Arr(reg.entries.values().map(|e| status_json(e)).collect()),
            ),
            ("journal".into(), Value::str(journal_state)),
            ("journal_degraded".into(), Value::Bool(degraded)),
            ("journal_errors".into(), Value::u64(errors)),
        ]),
    };
    drop(reg);
    writeln!(out, "{line}")
}

fn handle_health(shared: &Shared, out: &mut UnixStream) -> io::Result<()> {
    let (journal_state, degraded, errors) = shared.journal_health();
    // Sum of the overdue gauges across running sweeps: non-zero means
    // the hung-job watchdog sees at least one job past its deadline
    // plus grace right now.
    let jobs_overdue: u64 = {
        let reg = shared.registry.lock().unwrap();
        reg.entries
            .values()
            .filter(|e| matches!(*e.state.lock().unwrap(), ReqState::Running))
            .map(|e| e.progress.snapshot().overdue)
            .sum()
    };
    writeln!(
        out,
        "{}",
        ok_line(vec![
            ("journal".into(), Value::str(journal_state)),
            ("journal_degraded".into(), Value::Bool(degraded)),
            ("journal_errors".into(), Value::u64(errors)),
            (
                "tails_disconnected".into(),
                Value::u64(shared.tails_disconnected.load(Ordering::Relaxed)),
            ),
            (
                "checkpoints_written".into(),
                Value::u64(shared.checkpoints_written.load(Ordering::Relaxed)),
            ),
            (
                "exec_degraded".into(),
                Value::Bool(shared.exec_sandbox.degraded()),
            ),
            ("jobs_overdue".into(), Value::u64(jobs_overdue)),
        ])
    )
}

fn handle_cancel(shared: &Shared, id: u64, out: &mut UnixStream) -> io::Result<()> {
    let entry = {
        let reg = shared.registry.lock().unwrap();
        match reg.entries.get(&id) {
            Some(e) => Arc::clone(e),
            None => {
                drop(reg);
                return writeln!(out, "{}", err_line(&format!("no job {id}")));
            }
        }
    };
    entry.cancel.store(true, Ordering::Relaxed);
    let label = {
        let mut state = entry.state.lock().unwrap();
        match &*state {
            // Still queued: run_entry re-checks under this lock and
            // will not start it, so it is terminal right now.
            ReqState::Queued => {
                *state = ReqState::Cancelled;
                drop(state);
                clear_all_checkpoints(shared, &entry);
                shared.journal_terminal(id, "cancelled", EXIT_CANCELLED);
                "cancelled"
            }
            // Running: the flag stops it within a cycle; the
            // scheduler marks and logs the terminal state.
            ReqState::Running => "cancelling",
            other => other.label(),
        }
    };
    writeln!(
        out,
        "{}",
        ok_line(vec![
            ("id".into(), Value::u64(id)),
            ("state".into(), Value::str(label)),
        ])
    )
}

fn handle_shutdown(shared: &Shared, out: &mut UnixStream) -> io::Result<()> {
    {
        let mut reg = shared.registry.lock().unwrap();
        reg.shutdown = true;
        reg.queue.clear();
        // Cancel every live entry, queued or running — including one
        // the scheduler popped but has not transitioned yet (its
        // Queued → Running step re-checks under the state lock).
        for (id, entry) in reg.entries.iter() {
            let mut state = entry.state.lock().unwrap();
            match &*state {
                ReqState::Queued => {
                    entry.cancel.store(true, Ordering::Relaxed);
                    *state = ReqState::Cancelled;
                    drop(state);
                    clear_all_checkpoints(shared, entry);
                    shared.journal_terminal(*id, "cancelled", EXIT_CANCELLED);
                }
                ReqState::Running => entry.cancel.store(true, Ordering::Relaxed),
                _ => {}
            }
        }
    }
    shared.wake.notify_all();
    writeln!(out, "{}", ok_line(vec![]))?;
    // Unblock the accept loop so it observes the shutdown flag.
    let _ = UnixStream::connect(&shared.socket);
    Ok(())
}

/// Streams a job's telemetry until it reaches a terminal state:
/// `stream`/`window`/`event` lines per ring, `progress` lines on
/// change, then one `done` line with exact delivered/dropped totals.
///
/// A write failure (the subscriber vanished) only drops this
/// connection's subscription — the simulation thread never blocks on a
/// tail — and is counted in `health`'s `tails_disconnected`.
fn handle_tail(
    shared: &Shared,
    id: u64,
    ring_start: u64,
    from: Option<u64>,
    out: &mut UnixStream,
) -> io::Result<()> {
    let entry = {
        let reg = shared.registry.lock().unwrap();
        match reg.entries.get(&id) {
            Some(e) => Arc::clone(e),
            None => {
                drop(reg);
                return writeln!(out, "{}", err_line(&format!("no job {id}")));
            }
        }
    };
    writeln!(out, "{}", ok_line(vec![("id".into(), Value::u64(id))]))?;
    let result = stream_tail(&entry, ring_start, from, out);
    if result.is_err() {
        shared.tails_disconnected.fetch_add(1, Ordering::Relaxed);
    }
    result
}

fn stream_tail(
    entry: &JobEntry,
    ring_start: u64,
    from: Option<u64>,
    out: &mut UnixStream,
) -> io::Result<()> {
    let mut ring_idx = ring_start as usize;
    // `--from-seq` applies to the first ring this subscriber opens; a
    // reconnect resumes exactly where the last connection was cut off.
    let mut resume_from = from;
    let mut current: Option<(String, snake_sim::Subscription<TelemetryRecord>)> = None;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut last_progress = None;
    loop {
        let snap = entry.progress.snapshot();
        if last_progress != Some(snap) {
            writeln!(out, "{}", progress_line(&snap))?;
            last_progress = Some(snap);
        }
        let mut advanced = false;
        if current.is_none() {
            let opened = {
                let rings = entry.rings.lock().unwrap();
                // Subscribe from the requested sequence (0 for later
                // rings): a late subscriber gets whatever the ring
                // still holds, and the overwritten prefix is *counted*
                // (not silently absent) — the first drain reports it
                // in `dropped`.
                rings.get(ring_idx).map(|(job, ring)| {
                    (
                        job.clone(),
                        ring.subscribe_from(resume_from.take().unwrap_or(0)),
                    )
                })
            };
            if let Some((job, sub)) = opened {
                writeln!(out, "{}", stream_line(&job, sub.cursor()))?;
                current = Some((job, sub));
                advanced = true;
            }
        }
        if let Some((job, sub)) = &mut current {
            let drained = sub.drain();
            dropped += drained.dropped;
            if !drained.records.is_empty() {
                advanced = true;
            }
            for (k, rec) in drained.records.iter().enumerate() {
                writeln!(
                    out,
                    "{}",
                    record_line(job, drained.first_seq + k as u64, rec, dropped)
                )?;
                delivered += 1;
            }
            if drained.done {
                // After a complete drain the cursor sits one past the
                // last record the ring ever produced; publishing it
                // makes trailing drops verifiable by the client.
                writeln!(out, "{}", stream_end_line(job, sub.cursor()))?;
                current = None;
                ring_idx += 1;
                // Skip the idle sleep: the next ring may already exist.
                continue;
            }
        }
        if current.is_none() && ring_idx >= entry.rings.lock().unwrap().len() {
            if let Some((state, exit)) = entry.state.lock().unwrap().terminal() {
                let snap = entry.progress.snapshot();
                if last_progress != Some(snap) {
                    writeln!(out, "{}", progress_line(&snap))?;
                }
                return writeln!(out, "{}", done_line(state, exit, delivered, dropped));
            }
        }
        if !advanced {
            std::thread::sleep(TAIL_IDLE);
        }
    }
}

// Exercised end-to-end (daemon process, socket, client) in
// `tests/serve.rs` and `tests/serve_chaos.rs`; unit tests here cover
// the pure pieces.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_pops_priority_then_fifo_and_respects_blocking() {
        let none = HashSet::new();
        let queue = vec![(1, 0), (2, 5), (3, 5), (4, 1)];
        assert_eq!(best_queued(&queue, &none), Some(1), "highest priority wins");
        let queue = vec![(7, 2), (8, 2)];
        assert_eq!(
            best_queued(&queue, &none),
            Some(0),
            "FIFO within a priority"
        );
        assert_eq!(best_queued(&[], &none), None);
        // A quota-blocked id is passed over without starving the rest.
        let blocked: HashSet<u64> = [2].into_iter().collect();
        let queue = vec![(1, 0), (2, 5), (3, 1)];
        assert_eq!(best_queued(&queue, &blocked), Some(2));
        let all: HashSet<u64> = [1, 2, 3].into_iter().collect();
        assert_eq!(best_queued(&queue, &all), None);
    }

    #[test]
    fn resolve_rejects_bad_operands_and_defaults_sensibly() {
        let mut spec = SubmitSpec {
            quick: true,
            ..SubmitSpec::default()
        };
        let plan = resolve(&spec, false, None, false).unwrap();
        assert_eq!(
            plan.jobs.len(),
            Benchmark::all().len() * PrefetcherKind::all().len()
        );
        assert_eq!(
            plan.harness.cfg.metrics_window,
            Some(500),
            "window always on"
        );
        assert!(plan.desc.contains("quick"));

        spec.benchmarks = Some("LPS".into());
        spec.mechanisms = Some("baseline,snake".into());
        spec.window = Some(200);
        spec.budget = Some(6000);
        let plan = resolve(&spec, false, None, false).unwrap();
        assert_eq!(plan.jobs.len(), 2);
        assert_eq!(plan.harness.cfg.metrics_window, Some(200));
        assert_eq!(plan.harness.cfg.cycle_budget, Some(snake_sim::Cycle(6000)));

        spec.benchmarks = Some("NOPE".into());
        assert!(resolve(&spec, false, None, false)
            .unwrap_err()
            .contains("benchmark"));
        spec.benchmarks = Some(",".into());
        assert!(resolve(&spec, false, None, false)
            .unwrap_err()
            .contains("empty"));
    }

    #[test]
    fn resolve_gates_checkpointing_and_deadlines_on_the_journal() {
        let mut spec = SubmitSpec {
            quick: true,
            checkpoint_every: Some(1000),
            ..SubmitSpec::default()
        };
        // Checkpointing without a journal is refused, not ignored.
        assert!(resolve(&spec, false, None, false)
            .unwrap_err()
            .contains("--state"));
        let plan = resolve(&spec, true, None, false).unwrap();
        assert_eq!(plan.harness.cfg.checkpoint_every, Some(1000));
        // The daemon default applies when the submit does not override.
        spec.checkpoint_every = None;
        let plan = resolve(&spec, true, Some(2000), false).unwrap();
        assert_eq!(plan.harness.cfg.checkpoint_every, Some(2000));
        // A deadline needs somewhere to suspend to.
        spec.deadline_ms = Some(100);
        assert!(resolve(&spec, true, None, false)
            .unwrap_err()
            .contains("deadline"));
        assert!(resolve(&spec, true, Some(2000), false).is_ok());
        spec.deadline_ms = Some(0);
        assert!(resolve(&spec, true, Some(2000), false)
            .unwrap_err()
            .contains("positive"));
        // checkpoint_every = 0 falls to the config validator.
        spec.deadline_ms = None;
        spec.checkpoint_every = Some(0);
        assert!(resolve(&spec, true, None, false).is_err());
    }

    #[test]
    fn checkpoint_paths_are_journal_siblings() {
        let p = checkpoint_path(Path::new("/tmp/state.jsonl"), 3, "LPS/snake");
        assert_eq!(p, PathBuf::from("/tmp/state.jsonl.j3.LPS-snake.ckpt"));
    }

    #[test]
    fn protocol_mentions_every_terminal_state() {
        assert_eq!(ReqState::Queued.terminal(), None);
        assert_eq!(ReqState::Running.terminal(), None);
        assert_eq!(
            ReqState::Cancelled.terminal(),
            Some(("cancelled", EXIT_CANCELLED))
        );
        let done = ReqState::Done {
            exit: 0,
            reports: Vec::new(),
            failures: Vec::new(),
        };
        assert_eq!(done.terminal(), Some(("done", 0)));
    }

    #[test]
    fn resolve_arbitrates_isolation() {
        let spec = SubmitSpec {
            quick: true,
            ..SubmitSpec::default()
        };
        assert!(!resolve(&spec, false, None, false).unwrap().isolate);
        // Either side can turn isolation on.
        let spec = SubmitSpec {
            quick: true,
            isolate: true,
            ..SubmitSpec::default()
        };
        assert!(resolve(&spec, false, None, false).unwrap().isolate);
        let spec = SubmitSpec {
            quick: true,
            ..SubmitSpec::default()
        };
        assert!(resolve(&spec, false, None, true).unwrap().isolate);
        // Events cannot cross the sandbox wire, whichever side asked
        // for isolation.
        let spec = SubmitSpec {
            quick: true,
            events: true,
            isolate: true,
            ..SubmitSpec::default()
        };
        assert!(resolve(&spec, false, None, false)
            .unwrap_err()
            .contains("isolate"));
        let spec = SubmitSpec {
            quick: true,
            events: true,
            ..SubmitSpec::default()
        };
        assert!(resolve(&spec, false, None, true)
            .unwrap_err()
            .contains("isolate"));
        assert!(resolve(&spec, false, None, false).is_ok());
    }
}

//! Plain-text/markdown table rendering for the figure harness.

use std::fmt;

/// A rendered experiment: title, column headers, and rows of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment id and caption (e.g. `"Fig 16 — Prefetch coverage"`).
    pub title: String,
    /// Column headers; the first column is the row label.
    pub headers: Vec<String>,
    /// Rows of cells (first cell = row label).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper-reported numbers, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Adds a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = format!("### {}\n\n", self.title);
        s.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        s.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            s.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for n in &self.notes {
            s.push_str(&format!("\n> {n}\n"));
        }
        s
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            (0..cols)
                .map(|i| "-".repeat(widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a ratio (e.g. speedup) with three decimals.
pub fn ratio(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X — demo", vec!["app".into(), "value".into()]);
        t.push_row(vec!["LPS".into(), pct(0.8)]);
        t.note("paper: ~80%");
        t
    }

    #[test]
    fn display_contains_all_cells() {
        let s = sample().to_string();
        assert!(s.contains("Fig X"));
        assert!(s.contains("LPS"));
        assert!(s.contains("80.0%"));
        assert!(s.contains("paper: ~80%"));
    }

    #[test]
    fn markdown_is_well_formed() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### Fig X"));
        assert!(md.contains("| app | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("> paper"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(ratio(1.0 / 3.0), "0.333");
    }
}

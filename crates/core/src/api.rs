//! Mechanism registry: every comparison point of §4 behind one enum,
//! so the bench harness (and users) can build any of the paper's ten
//! configurations by name.

use snake_sim::{NullPrefetcher, PrefetchPlacement, Prefetcher};

use crate::baselines::{Combined, CtaAware, InterWarp, IntraWarp, Mta, Tree};
use crate::snake::{Snake, SnakeConfig};

/// The prefetching mechanisms evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching (the baseline GPU).
    Baseline,
    /// Intra-warp stride prefetcher (comparison point 1).
    Intra,
    /// Inter-warp stride prefetcher (comparison point 2).
    Inter,
    /// Many-Thread-Aware = intra + inter (comparison point 3).
    Mta,
    /// CTA-aware prefetcher (comparison point 4).
    Cta,
    /// Spatial 64KB-chunk prefetcher (comparison point 5).
    Tree,
    /// Chains of strides only (comparison point 6).
    SSnake,
    /// Snake without decoupling and throttling (comparison point 7).
    SnakeDt,
    /// Snake with decoupling, without throttling (comparison point 8).
    SnakeT,
    /// Full Snake.
    Snake,
    /// Snake combined with CTA-aware (comparison point 9).
    SnakeCta,
    /// Snake with an isolated prefetch buffer (§5.7).
    IsolatedSnake,
}

impl PrefetcherKind {
    /// Every mechanism in Fig 16/17/18 order, baseline first.
    pub fn all() -> &'static [PrefetcherKind] {
        &[
            PrefetcherKind::Baseline,
            PrefetcherKind::Intra,
            PrefetcherKind::Inter,
            PrefetcherKind::Mta,
            PrefetcherKind::Cta,
            PrefetcherKind::Tree,
            PrefetcherKind::SSnake,
            PrefetcherKind::SnakeDt,
            PrefetcherKind::SnakeT,
            PrefetcherKind::Snake,
            PrefetcherKind::SnakeCta,
        ]
    }

    /// The report name (matches each mechanism's `Prefetcher::name`).
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::Baseline => "baseline",
            PrefetcherKind::Intra => "intra-warp",
            PrefetcherKind::Inter => "inter-warp",
            PrefetcherKind::Mta => "mta",
            PrefetcherKind::Cta => "cta-aware",
            PrefetcherKind::Tree => "tree",
            PrefetcherKind::SSnake => "s-snake",
            PrefetcherKind::SnakeDt => "snake-dt",
            PrefetcherKind::SnakeT => "snake-t",
            PrefetcherKind::Snake => "snake",
            PrefetcherKind::SnakeCta => "snake+cta",
            PrefetcherKind::IsolatedSnake => "isolated-snake",
        }
    }

    /// Builds a fresh instance. `warps` sizes the Snake Head table
    /// (use the SM's resident-warp count).
    pub fn build(self, warps: u32) -> Box<dyn Prefetcher> {
        let snake_cfg = |cfg: SnakeConfig| SnakeConfig {
            head_warps: warps,
            ..cfg
        };
        match self {
            PrefetcherKind::Baseline => Box::new(NullPrefetcher),
            PrefetcherKind::Intra => Box::new(IntraWarp::default()),
            PrefetcherKind::Inter => Box::new(InterWarp::default()),
            PrefetcherKind::Mta => Box::new(Mta::default()),
            PrefetcherKind::Cta => Box::new(CtaAware::default()),
            PrefetcherKind::Tree => Box::new(Tree::default()),
            PrefetcherKind::SSnake => Box::new(Snake::new(snake_cfg(SnakeConfig::s_snake()))),
            PrefetcherKind::SnakeDt => Box::new(Snake::new(snake_cfg(SnakeConfig::snake_dt()))),
            PrefetcherKind::SnakeT => Box::new(Snake::new(snake_cfg(SnakeConfig::snake_t()))),
            PrefetcherKind::Snake => Box::new(Snake::new(snake_cfg(SnakeConfig::snake()))),
            PrefetcherKind::SnakeCta => Box::new(Combined::new(
                "snake+cta",
                Box::new(Snake::new(snake_cfg(SnakeConfig::snake()))),
                Box::new(CtaAware::default()),
                PrefetchPlacement::Decoupled,
            )),
            PrefetcherKind::IsolatedSnake => {
                Box::new(Snake::new(snake_cfg(SnakeConfig::isolated(32))))
            }
        }
    }

    /// Whether this mechanism carries prefetcher hardware (for the
    /// energy model's table costs).
    pub fn has_hardware(self) -> bool {
        self != PrefetcherKind::Baseline
    }
}

impl std::fmt::Display for PrefetcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PrefetcherKind {
    type Err = ParseKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let all = [
            PrefetcherKind::Baseline,
            PrefetcherKind::Intra,
            PrefetcherKind::Inter,
            PrefetcherKind::Mta,
            PrefetcherKind::Cta,
            PrefetcherKind::Tree,
            PrefetcherKind::SSnake,
            PrefetcherKind::SnakeDt,
            PrefetcherKind::SnakeT,
            PrefetcherKind::Snake,
            PrefetcherKind::SnakeCta,
            PrefetcherKind::IsolatedSnake,
        ];
        all.into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| ParseKindError(s.to_owned()))
    }
}

/// Error parsing a mechanism name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKindError(String);

impl std::fmt::Display for ParseKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown prefetcher kind: {:?}", self.0)
    }
}

impl std::error::Error for ParseKindError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_build() {
        for &k in PrefetcherKind::all() {
            let p = k.build(16);
            assert_eq!(p.name(), k.name(), "{k:?}");
        }
        let iso = PrefetcherKind::IsolatedSnake.build(16);
        assert_eq!(iso.name(), "isolated-snake");
    }

    #[test]
    fn names_parse_back() {
        for &k in PrefetcherKind::all() {
            assert_eq!(k.name().parse::<PrefetcherKind>().unwrap(), k);
        }
        assert!("nope".parse::<PrefetcherKind>().is_err());
    }

    #[test]
    fn placements_match_the_paper() {
        assert_eq!(
            PrefetcherKind::Snake.build(16).placement(),
            PrefetchPlacement::Decoupled
        );
        assert_eq!(
            PrefetcherKind::SnakeDt.build(16).placement(),
            PrefetchPlacement::PlainL1
        );
        assert_eq!(
            PrefetcherKind::Mta.build(16).placement(),
            PrefetchPlacement::PlainL1
        );
        assert!(matches!(
            PrefetcherKind::IsolatedSnake.build(16).placement(),
            PrefetchPlacement::Isolated { .. }
        ));
    }

    #[test]
    fn all_excludes_isolated_but_it_still_builds() {
        assert!(!PrefetcherKind::all().contains(&PrefetcherKind::IsolatedSnake));
        assert_eq!(PrefetcherKind::all().len(), 11);
    }

    #[test]
    fn baseline_has_no_hardware() {
        assert!(!PrefetcherKind::Baseline.has_hardware());
        assert!(PrefetcherKind::Snake.has_hardware());
    }
}

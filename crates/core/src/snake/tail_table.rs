//! The Tail table (§3.1–§3.2): chains of inter-thread strides plus
//! intra-warp and inter-warp strides, with the paper's training FSM,
//! promotion rule, verification/demotion, and eviction policies.

use snake_sim::json::Value;
use snake_sim::snapshot::{self, SnapshotError};
use snake_sim::{Address, Pc, WarpId};

use crate::snake::head_table::Transition;

/// The 2-bit train status of a stride (`T1`/`T2` in Fig 13/15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrainState {
    /// `00` — not trained.
    NotTrained,
    /// `01` — observed once; awaiting confirmation.
    Observed,
    /// `10` — promoted: confirmed by enough warps; prefetches issue
    /// for all future warps.
    Promoted,
    /// `11` — trained: re-confirmed after promotion.
    Trained,
}

impl TrainState {
    /// Whether prefetches may be issued from this state.
    pub fn can_prefetch(self) -> bool {
        matches!(self, TrainState::Promoted | TrainState::Trained)
    }

    /// The raw 2-bit encoding.
    pub fn bits(self) -> u8 {
        match self {
            TrainState::NotTrained => 0b00,
            TrainState::Observed => 0b01,
            TrainState::Promoted => 0b10,
            TrainState::Trained => 0b11,
        }
    }

    /// Decodes the 2-bit encoding; `None` for out-of-range values.
    pub fn from_bits(bits: u8) -> Option<TrainState> {
        match bits {
            0b00 => Some(TrainState::NotTrained),
            0b01 => Some(TrainState::Observed),
            0b10 => Some(TrainState::Promoted),
            0b11 => Some(TrainState::Trained),
            _ => None,
        }
    }
}

/// Eviction policy for a full Tail table (§3.1, Fig 20 vs Fig 22).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// The paper's main policy: take the LRU half of the entries, then
    /// evict the one with the fewest set bits in its warp vector.
    #[default]
    LruThenPopcount,
    /// Ablation: fewest set bits only (Fig 22).
    PopcountOnly,
}

/// One Tail-table entry (the eight fields of §3.1).
#[derive(Debug, Clone)]
pub struct TailEntry {
    /// Head load PC.
    pub pc1: Pc,
    /// Consecutive load PC.
    pub pc2: Pc,
    /// Inter-thread stride between `pc1` and `pc2` addresses.
    pub inter_thread_stride: i64,
    /// Train status of the inter-thread stride.
    pub t1: TrainState,
    /// Warps that observed this `(pc1, pc2, stride)` pattern.
    pub warp_vec: u64,
    /// Intra-warp (loop) stride of `pc1`, once observed.
    pub intra_stride: Option<i64>,
    /// Train status of the intra-warp stride.
    pub t2: TrainState,
    /// Warps confirming the intra-warp stride (3 promote it).
    intra_warps: u64,
    /// Committed inter-warp stride of `pc1` (no train field: it is
    /// only written once three warps agree).
    pub inter_warp_stride: Option<i64>,
    /// First `(warp, address)` observation of `pc1`, for deriving the
    /// per-warp stride.
    iw_base: Option<(WarpId, Address)>,
    /// Per-warp stride candidate derived from `iw_base`.
    iw_candidate: Option<i64>,
    /// Warps confirming the candidate.
    iw_confirm: u64,
    /// Same-warp re-observations of the inter-thread stride (loop
    /// repetition — the §3.2 single-warp training path).
    repeats: u8,
    /// LRU sequence stamp.
    last_use: u64,
}

impl TailEntry {
    fn new(pc1: Pc, pc2: Pc, stride: i64, warp: WarpId, seq: u64) -> Self {
        TailEntry {
            pc1,
            pc2,
            inter_thread_stride: stride,
            t1: TrainState::Observed,
            warp_vec: warp_bit(warp),
            intra_stride: None,
            t2: TrainState::NotTrained,
            intra_warps: 0,
            inter_warp_stride: None,
            iw_base: None,
            iw_candidate: None,
            iw_confirm: 0,
            repeats: 0,
            last_use: seq,
        }
    }

    /// Serializes every field (including the private training scratch)
    /// for a checkpoint.
    pub fn save_state(&self) -> Value {
        let opt_i64 = |s: Option<i64>| s.map_or(Value::Null, snapshot::i64_value);
        Value::Obj(vec![
            ("pc1".into(), Value::u64(u64::from(self.pc1.0))),
            ("pc2".into(), Value::u64(u64::from(self.pc2.0))),
            (
                "inter_thread_stride".into(),
                snapshot::i64_value(self.inter_thread_stride),
            ),
            ("t1".into(), Value::u64(u64::from(self.t1.bits()))),
            ("warp_vec".into(), Value::u64(self.warp_vec)),
            ("intra_stride".into(), opt_i64(self.intra_stride)),
            ("t2".into(), Value::u64(u64::from(self.t2.bits()))),
            ("intra_warps".into(), Value::u64(self.intra_warps)),
            ("inter_warp_stride".into(), opt_i64(self.inter_warp_stride)),
            (
                "iw_base".into(),
                self.iw_base.map_or(Value::Null, |(w, a)| {
                    Value::Arr(vec![Value::u64(u64::from(w.0)), Value::u64(a.raw())])
                }),
            ),
            ("iw_candidate".into(), opt_i64(self.iw_candidate)),
            ("iw_confirm".into(), Value::u64(self.iw_confirm)),
            ("repeats".into(), Value::u64(u64::from(self.repeats))),
            ("last_use".into(), Value::u64(self.last_use)),
        ])
    }

    /// Decodes an entry captured by [`TailEntry::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when any field is missing or does
    /// not decode.
    pub fn from_state(v: &Value) -> Result<TailEntry, SnapshotError> {
        let bad = |what: &str| SnapshotError::malformed(format!("tail entry: bad {what}"));
        let opt_i64 = |key: &str| -> Result<Option<i64>, SnapshotError> {
            match snapshot::field(v, key)? {
                Value::Null => Ok(None),
                other => Ok(Some(other.as_i64().ok_or_else(|| bad(key))?)),
            }
        };
        let state = |key: &str| -> Result<TrainState, SnapshotError> {
            let bits = u8::try_from(snapshot::u64_field(v, key)?).map_err(|_| bad(key))?;
            TrainState::from_bits(bits).ok_or_else(|| bad(key))
        };
        let iw_base = match snapshot::field(v, "iw_base")? {
            Value::Null => None,
            other => match other.as_arr() {
                Some([w, a]) => Some((
                    WarpId(w.as_u32().ok_or_else(|| bad("iw_base"))?),
                    Address(a.as_u64().ok_or_else(|| bad("iw_base"))?),
                )),
                _ => return Err(bad("iw_base")),
            },
        };
        Ok(TailEntry {
            pc1: Pc(snapshot::u32_field(v, "pc1")?),
            pc2: Pc(snapshot::u32_field(v, "pc2")?),
            inter_thread_stride: snapshot::i64_field(v, "inter_thread_stride")?,
            t1: state("t1")?,
            warp_vec: snapshot::u64_field(v, "warp_vec")?,
            intra_stride: opt_i64("intra_stride")?,
            t2: state("t2")?,
            intra_warps: snapshot::u64_field(v, "intra_warps")?,
            inter_warp_stride: opt_i64("inter_warp_stride")?,
            iw_base,
            iw_candidate: opt_i64("iw_candidate")?,
            iw_confirm: snapshot::u64_field(v, "iw_confirm")?,
            repeats: u8::try_from(snapshot::u64_field(v, "repeats")?)
                .map_err(|_| bad("repeats"))?,
            last_use: snapshot::u64_field(v, "last_use")?,
        })
    }

    /// Number of warps that observed the inter-thread pattern.
    pub fn popcount(&self) -> u32 {
        self.warp_vec.count_ones()
    }

    /// Whether `warp`'s bit is set.
    pub fn has_warp(&self, warp: WarpId) -> bool {
        self.warp_vec & warp_bit(warp) != 0
    }
}

fn warp_bit(warp: WarpId) -> u64 {
    1u64 << (warp.0 % 64)
}

/// Configuration knobs of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailTableConfig {
    /// Entry capacity (the paper settles on 10, §5.5/Fig 20).
    pub entries: usize,
    /// Distinct warps required to promote a stride (the paper uses 3).
    pub promote_threshold: u32,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
    /// Maximum hops when reconstructing a non-consecutive intra-warp
    /// stride by accumulating chain strides (§3.1 case 2).
    pub max_chain_walk: usize,
}

impl Default for TailTableConfig {
    fn default() -> Self {
        TailTableConfig {
            entries: 10,
            promote_threshold: 3,
            eviction: EvictionPolicy::LruThenPopcount,
            max_chain_walk: 8,
        }
    }
}

/// The Tail table.
#[derive(Debug, Clone)]
pub struct TailTable {
    entries: Vec<TailEntry>,
    cfg: TailTableConfig,
    seq: u64,
    /// Set once any stride reaches a prefetchable state.
    any_trained: bool,
}

impl TailTable {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity or promote threshold is zero.
    pub fn new(cfg: TailTableConfig) -> Self {
        assert!(cfg.entries > 0, "tail table needs capacity");
        assert!(
            cfg.promote_threshold > 0,
            "promote threshold must be positive"
        );
        TailTable {
            entries: Vec::with_capacity(cfg.entries),
            cfg,
            seq: 0,
            any_trained: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TailTableConfig {
        &self.cfg
    }

    /// Current entries (diagnostics, cost model, examples).
    pub fn entries(&self) -> &[TailEntry] {
        &self.entries
    }

    /// Whether any stride has reached a prefetchable state (drives the
    /// decoupled L1's 50% training cap).
    pub fn any_trained(&self) -> bool {
        self.any_trained
    }

    /// Clears all entries (kernel boundary).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.seq = 0;
        self.any_trained = false;
    }

    /// Serializes entries (in table order — it is LRU-meaningful) and
    /// training cursors for a checkpoint. The configuration is not
    /// captured; restore requires a table built with the same config.
    pub fn save_state(&self) -> Value {
        Value::Obj(vec![
            (
                "entries".into(),
                Value::Arr(self.entries.iter().map(TailEntry::save_state).collect()),
            ),
            ("seq".into(), Value::u64(self.seq)),
            ("any_trained".into(), Value::Bool(self.any_trained)),
        ])
    }

    /// Restores state captured by [`TailTable::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when an entry does not decode or
    /// the checkpoint holds more entries than this table's capacity.
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let items = snapshot::arr_field(v, "entries")?;
        if items.len() > self.cfg.entries {
            return Err(SnapshotError::malformed(format!(
                "checkpoint has {} tail entries, capacity is {}",
                items.len(),
                self.cfg.entries
            )));
        }
        let seq = snapshot::u64_field(v, "seq")?;
        let any_trained = snapshot::bool_field(v, "any_trained")?;
        let mut entries = Vec::with_capacity(self.cfg.entries);
        for item in items {
            entries.push(TailEntry::from_state(item)?);
        }
        self.entries = entries;
        self.seq = seq;
        self.any_trained = any_trained;
        Ok(())
    }

    fn tick(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// The detection step (Fig 12): digest one Head-table transition.
    pub fn observe(&mut self, t: &Transition) {
        let stride = t.stride();
        let seq = self.tick();

        // ── Verification / demotion (§3.2 last paragraph): if this
        // warp previously claimed a different (pc2, stride) continuation
        // for prev_pc, remove it from that entry's warp vector.
        let threshold = self.cfg.promote_threshold;
        for e in &mut self.entries {
            if e.pc1 == t.prev_pc
                && e.has_warp(t.warp)
                && !(e.pc2 == t.cur_pc && e.inter_thread_stride == stride)
            {
                e.warp_vec &= !warp_bit(t.warp);
                if e.popcount() < threshold && e.t1.can_prefetch() {
                    e.t1 = TrainState::NotTrained;
                }
            }
        }

        // ── Intra-warp stride candidate (computed against the *old*
        // table contents, before this transition is inserted):
        // case 1 — the same PC re-executed consecutively; case 2 —
        // non-consecutive re-execution, reconstructed by accumulating
        // the warp's chain strides from cur_pc to prev_pc (§3.1).
        let intra_candidate = if t.cur_pc == t.prev_pc {
            Some(stride)
        } else {
            self.chain_distance(t.warp, t.cur_pc, t.prev_pc)
                .map(|total| {
                    let old_base = t.prev_addr.offset(-total);
                    t.cur_addr.stride_from(old_base)
                })
        };

        // ── Inter-thread chain entry: match or insert (Fig 12 ❷–❺).
        let threshold = self.cfg.promote_threshold;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.pc1 == t.prev_pc && e.pc2 == t.cur_pc && e.inter_thread_stride == stride)
        {
            let had_warp = e.has_warp(t.warp);
            e.warp_vec |= warp_bit(t.warp);
            e.last_use = seq;
            if had_warp {
                e.repeats = e.repeats.saturating_add(1);
            }
            if e.t1 == TrainState::Promoted && had_warp {
                // Re-confirmation after promotion.
                e.t1 = TrainState::Trained;
            } else if e.t1 < TrainState::Promoted && (e.popcount() >= threshold || e.repeats >= 2) {
                // Promote via the SIMT multi-warp rule (>= 3 warps) or
                // via in-warp loop repetition (seen, then repeated) —
                // both training paths of §3.2.
                e.t1 = TrainState::Promoted;
            }
            if e.t1.can_prefetch() {
                self.any_trained = true;
            }
        } else {
            self.insert(TailEntry::new(t.prev_pc, t.cur_pc, stride, t.warp, seq));
        }

        // ── Fixed strides, applied after the entry exists so the very
        // first observation of a PC is not lost.
        if let Some(intra) = intra_candidate {
            self.update_intra(t.cur_pc, t.warp, intra);
        }
        self.update_inter_warp(t.prev_pc, t.warp, t.prev_addr);
    }

    /// Accumulated stride from `from` to `to` along `warp`'s trained
    /// chain links, if a path exists within the walk bound.
    fn chain_distance(&self, warp: WarpId, from: Pc, to: Pc) -> Option<i64> {
        let mut pc = from;
        let mut total = 0i64;
        for _ in 0..self.cfg.max_chain_walk {
            let e = self
                .entries
                .iter()
                .find(|e| e.pc1 == pc && e.has_warp(warp))?;
            total += e.inter_thread_stride;
            if e.pc2 == to {
                return Some(total);
            }
            pc = e.pc2;
            if pc == from {
                return None; // cycle without reaching `to`
            }
        }
        None
    }

    fn update_intra(&mut self, pc: Pc, warp: WarpId, stride: i64) {
        let threshold = self.cfg.promote_threshold;
        let mut trained = false;
        if let Some(e) = self.entries.iter_mut().find(|e| e.pc1 == pc) {
            match e.intra_stride {
                None => {
                    e.intra_stride = Some(stride);
                    e.t2 = TrainState::Observed;
                    e.intra_warps = warp_bit(warp);
                }
                Some(v) if v == stride => {
                    e.intra_warps |= warp_bit(warp);
                    if e.intra_warps.count_ones() >= threshold {
                        e.t2 = TrainState::Trained;
                    } else if e.t2 == TrainState::Observed {
                        // Second consistent sighting (possibly the same
                        // warp looping): promote.
                        e.t2 = TrainState::Promoted;
                    }
                }
                Some(_) => {
                    // Pattern changed: retrain.
                    e.intra_stride = Some(stride);
                    e.t2 = TrainState::Observed;
                    e.intra_warps = warp_bit(warp);
                }
            }
            trained = e.t2.can_prefetch();
        }
        if trained {
            self.any_trained = true;
        }
    }

    fn update_inter_warp(&mut self, pc: Pc, warp: WarpId, addr: Address) {
        let threshold = self.cfg.promote_threshold;
        let mut trained = false;
        if let Some(e) = self.entries.iter_mut().find(|e| e.pc1 == pc) {
            match e.iw_base {
                None => e.iw_base = Some((warp, addr)),
                Some((w0, a0)) if w0 != warp => {
                    let dw = i64::from(warp.0) - i64::from(w0.0);
                    let delta = addr.stride_from(a0);
                    if delta % dw == 0 {
                        let per_warp = delta / dw;
                        if e.iw_candidate == Some(per_warp) {
                            e.iw_confirm |= warp_bit(warp);
                            if e.iw_confirm.count_ones() >= threshold {
                                e.inter_warp_stride = Some(per_warp);
                                trained = true;
                            }
                        } else {
                            e.iw_candidate = Some(per_warp);
                            e.iw_confirm = warp_bit(w0) | warp_bit(warp);
                        }
                    }
                }
                Some(_) => {} // same warp re-executing: intra-warp's job
            }
        }
        if trained {
            self.any_trained = true;
        }
    }

    fn insert(&mut self, entry: TailEntry) {
        if self.entries.len() >= self.cfg.entries {
            let victim = self.eviction_victim();
            self.entries.swap_remove(victim);
        }
        self.entries.push(entry);
    }

    /// Chooses the entry index to evict per the configured policy.
    fn eviction_victim(&self) -> usize {
        debug_assert!(!self.entries.is_empty());
        match self.cfg.eviction {
            EvictionPolicy::PopcountOnly => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.popcount(), e.last_use))
                .map(|(i, _)| i)
                .expect("non-empty"),
            EvictionPolicy::LruThenPopcount => {
                // LRU bucket = oldest half (at least one entry).
                let mut order: Vec<usize> = (0..self.entries.len()).collect();
                order.sort_by_key(|&i| self.entries[i].last_use);
                let bucket = self.entries.len().div_ceil(2);
                order[..bucket]
                    .iter()
                    .copied()
                    .min_by_key(|&i| (self.entries[i].popcount(), self.entries[i].last_use))
                    .expect("non-empty bucket")
            }
        }
    }

    /// The prefetching step (§3.2): generate target addresses for a
    /// demand execution of `pc` at `addr` by `warp`.
    ///
    /// `chain_depth` bounds the inter-thread chain walk; `iw_degree`
    /// is how many future warps to cover with the inter-warp stride;
    /// `use_fixed` enables the intra-warp/inter-warp fixed-stride
    /// targets (s-Snake passes `false`). Targets are appended to `out`
    /// in priority order (inter-thread first — "Snake accords priority
    /// to the inter-thread stride", §3.4 — then intra-warp, then
    /// inter-warp). Returns a [`WalkSummary`] describing how the chain
    /// walk ended, for telemetry.
    #[allow(clippy::too_many_arguments)]
    pub fn generate(
        &mut self,
        warp: WarpId,
        pc: Pc,
        addr: Address,
        chain_depth: usize,
        iw_degree: u32,
        use_fixed: bool,
        out: &mut Vec<Address>,
    ) -> WalkSummary {
        let seq = self.tick();

        // Inter-thread chain walk.
        let chain_start = out.len();
        let mut cur_pc = pc;
        let mut cum = 0i64;
        let mut visited = 0usize;
        let mut exhausted = true;
        while visited < chain_depth {
            let Some(idx) = self.entries.iter().position(|e| {
                e.pc1 == cur_pc
                    && e.t1.can_prefetch()
                    && (e.has_warp(warp) || e.t1 == TrainState::Promoted)
            }) else {
                exhausted = false;
                break;
            };
            let (stride, pc2) = {
                let e = &mut self.entries[idx];
                e.last_use = seq;
                (e.inter_thread_stride, e.pc2)
            };
            cum += stride;
            let target = addr.offset(cum);
            // Zero-stride links (e.g. a chain returning to the same
            // address) and laps revisiting earlier targets add nothing.
            if target != addr && !out.contains(&target) {
                out.push(target);
            }
            cur_pc = pc2;
            visited += 1;
            // Note: deliberately *no* cycle break — walking around a
            // loop's chain cycle repeatedly is how Snake prefetches
            // multiple iterations ahead ("delving deeper", §3.2/Fig 13);
            // `chain_depth` (throttling) bounds the walk.
        }
        let summary = WalkSummary {
            steps: visited as u32,
            exhausted,
            chain_targets: out.len() - chain_start,
        };

        // Intra-warp and inter-warp strides of this PC.
        if !use_fixed {
            return summary;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.pc1 == pc) {
            e.last_use = seq;
            if e.t2.can_prefetch() {
                if let Some(s) = e.intra_stride {
                    out.push(addr.offset(s));
                }
            }
            if let Some(s) = e.inter_warp_stride {
                for k in 1..=i64::from(iw_degree) {
                    out.push(addr.offset(s * k));
                }
            }
        }
        summary
    }
}

/// Aggregate result of one [`TailTable::generate`] chain walk, used
/// for chain-walk telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkSummary {
    /// Inter-thread chain hops taken.
    pub steps: u32,
    /// Whether the walk stopped at the depth bound, rather than
    /// running out of trained links.
    pub exhausted: bool,
    /// Chain-walk targets appended to `out` (fixed-stride targets
    /// appended afterwards are not counted).
    pub chain_targets: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(warp: u32, pc1: u32, a1: u64, pc2: u32, a2: u64) -> Transition {
        Transition {
            warp: WarpId(warp),
            prev_pc: Pc(pc1),
            prev_addr: Address(a1),
            cur_pc: Pc(pc2),
            cur_addr: Address(a2),
        }
    }

    fn table() -> TailTable {
        TailTable::new(TailTableConfig::default())
    }

    #[test]
    fn three_warps_promote_inter_thread_stride() {
        let mut t = table();
        for w in 0..3u32 {
            let base = 1000 * u64::from(w);
            t.observe(&tr(w, 10, base, 20, base + 400));
        }
        let e = &t.entries()[0];
        assert_eq!(e.pc1, Pc(10));
        assert_eq!(e.pc2, Pc(20));
        assert_eq!(e.inter_thread_stride, 400);
        assert_eq!(e.t1, TrainState::Promoted);
        assert_eq!(e.popcount(), 3);
        assert!(t.any_trained());
    }

    #[test]
    fn two_warps_do_not_promote() {
        let mut t = table();
        for w in 0..2u32 {
            t.observe(&tr(w, 10, 0, 20, 400));
        }
        assert_eq!(t.entries()[0].t1, TrainState::Observed);
        assert!(!t.any_trained());
    }

    #[test]
    fn reconfirmation_upgrades_promoted_to_trained() {
        let mut t = table();
        for w in 0..3u32 {
            t.observe(&tr(w, 10, 0, 20, 400));
        }
        assert_eq!(t.entries()[0].t1, TrainState::Promoted);
        t.observe(&tr(0, 10, 4000, 20, 4400));
        assert_eq!(t.entries()[0].t1, TrainState::Trained);
    }

    #[test]
    fn divergent_continuation_demotes_warp() {
        let mut t = table();
        for w in 0..3u32 {
            t.observe(&tr(w, 10, 0, 20, 400));
        }
        // Warp 1 now continues 10 -> 30 instead: removed from the
        // (10,20) entry; popcount drops below 3 -> not trained.
        t.observe(&tr(1, 10, 0, 30, 800));
        let e = t
            .entries()
            .iter()
            .find(|e| e.pc1 == Pc(10) && e.pc2 == Pc(20))
            .unwrap();
        assert!(!e.has_warp(WarpId(1)));
        assert_eq!(e.t1, TrainState::NotTrained);
    }

    #[test]
    fn variable_strides_coexist_in_separate_entries() {
        let mut t = table();
        t.observe(&tr(0, 10, 0, 20, 400));
        t.observe(&tr(1, 10, 0, 20, 800));
        assert_eq!(t.entries().len(), 2, "different strides, different entries");
    }

    #[test]
    fn consecutive_same_pc_trains_intra_stride() {
        let mut t = table();
        // Warp 0 loops on pc 10 with stride 128 (case 1).
        t.observe(&tr(0, 10, 0, 10, 128));
        t.observe(&tr(0, 10, 128, 10, 256));
        let e = &t.entries()[0];
        assert_eq!(e.intra_stride, Some(128));
        assert!(e.t2.can_prefetch(), "second consistent sighting promotes");
    }

    #[test]
    fn nonconsecutive_intra_stride_reconstructed_via_chain() {
        // Loop body: pc10 -> pc20 -> pc30 -> pc10 (next iteration).
        // Iteration i: pc10@b, pc20@b+400, pc30@b+1000, next b' = b+4096.
        let mut t = table();
        let mut b = 0u64;
        for _ in 0..4 {
            t.observe(&tr(0, 10, b, 20, b + 400));
            t.observe(&tr(0, 20, b + 400, 30, b + 1000));
            t.observe(&tr(0, 30, b + 1000, 10, b + 4096));
            b += 4096;
        }
        let e = t.entries().iter().find(|e| e.pc1 == Pc(10)).unwrap();
        assert_eq!(
            e.intra_stride,
            Some(4096),
            "chain accumulation must recover the loop stride"
        );
        assert!(e.t2.can_prefetch());
    }

    #[test]
    fn inter_warp_stride_commits_after_three_warps() {
        let mut t = table();
        // Warps 0..3 execute pc 10 at addresses w*512 (per-warp 512),
        // each followed by pc 20 (so pc10 appears as PC1).
        for w in 0..4u32 {
            let base = 512 * u64::from(w);
            t.observe(&tr(w, 10, base, 20, base + 128));
        }
        let e = t.entries().iter().find(|e| e.pc1 == Pc(10)).unwrap();
        assert_eq!(e.inter_warp_stride, Some(512));
    }

    #[test]
    fn inconsistent_inter_warp_stride_never_commits() {
        let mut t = table();
        let addrs = [0u64, 512, 700, 1900];
        for (w, a) in addrs.iter().enumerate() {
            t.observe(&tr(w as u32, 10, *a, 20, a + 128));
        }
        let e = t.entries().iter().find(|e| e.pc1 == Pc(10)).unwrap();
        assert_eq!(e.inter_warp_stride, None);
    }

    #[test]
    fn generate_walks_chain_to_depth() {
        let mut t = table();
        // Train chain 10 -(+400)-> 20 -(+600)-> 30 on 3 warps.
        for w in 0..3u32 {
            let b = 10_000 * u64::from(w);
            t.observe(&tr(w, 10, b, 20, b + 400));
            t.observe(&tr(w, 20, b + 400, 30, b + 1000));
        }
        let mut out = Vec::new();
        t.generate(WarpId(0), Pc(10), Address(50_000), 4, 0, true, &mut out);
        assert_eq!(out[0], Address(50_400), "one hop");
        assert_eq!(out[1], Address(51_000), "two hops");
    }

    #[test]
    fn generate_uses_promoted_entries_for_new_warps() {
        let mut t = table();
        for w in 0..3u32 {
            t.observe(&tr(
                w,
                10,
                1000 * u64::from(w),
                20,
                1000 * u64::from(w) + 400,
            ));
        }
        // Warp 7 never observed the pattern but it is promoted.
        let mut out = Vec::new();
        t.generate(WarpId(7), Pc(10), Address(9000), 4, 0, true, &mut out);
        assert_eq!(out, vec![Address(9400)]);
    }

    #[test]
    fn generate_reports_walk_summary() {
        let mut t = table();
        for w in 0..3u32 {
            let b = 10_000 * u64::from(w);
            t.observe(&tr(w, 10, b, 20, b + 400));
            t.observe(&tr(w, 20, b + 400, 30, b + 1000));
        }
        let mut out = Vec::new();
        // Depth 2 on a two-link chain: the depth bound is what stops it.
        let s = t.generate(WarpId(0), Pc(10), Address(50_000), 2, 0, true, &mut out);
        assert_eq!(s.steps, 2);
        assert!(s.exhausted);
        assert_eq!(s.chain_targets, 2);
        // Depth 4: the chain runs out of links after two hops.
        let mut out = Vec::new();
        let s = t.generate(WarpId(0), Pc(10), Address(50_000), 4, 0, true, &mut out);
        assert_eq!(s.steps, 2);
        assert!(!s.exhausted);
        // Untrained PC: the walk never starts.
        let mut out = Vec::new();
        let s = t.generate(WarpId(0), Pc(77), Address(0), 4, 0, true, &mut out);
        assert_eq!(s.steps, 0);
        assert!(!s.exhausted);
        assert_eq!(s.chain_targets, 0);
    }

    #[test]
    fn generate_emits_nothing_untrained() {
        let mut t = table();
        t.observe(&tr(0, 10, 0, 20, 400));
        let mut out = Vec::new();
        t.generate(WarpId(0), Pc(10), Address(0), 4, 2, true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn generate_inter_warp_degree() {
        let mut t = table();
        for w in 0..4u32 {
            let base = 512 * u64::from(w);
            t.observe(&tr(w, 10, base, 20, base + 128));
        }
        let mut out = Vec::new();
        t.generate(WarpId(5), Pc(10), Address(10_000), 0, 3, true, &mut out);
        assert_eq!(out, vec![Address(10_512), Address(11_024), Address(11_536)]);
    }

    #[test]
    fn capacity_is_enforced_with_eviction() {
        let mut t = TailTable::new(TailTableConfig {
            entries: 4,
            ..Default::default()
        });
        for i in 0..10u32 {
            t.observe(&tr(0, i, 0, i + 100, 400));
        }
        assert_eq!(t.entries().len(), 4);
    }

    #[test]
    fn eviction_prefers_low_popcount_in_lru_bucket() {
        let mut t = TailTable::new(TailTableConfig {
            entries: 3,
            ..Default::default()
        });
        // Entry A: 3 warps (popular, oldest).
        for w in 0..3u32 {
            t.observe(&tr(w, 1, 0, 2, 400));
        }
        // Entry B: 1 warp.
        t.observe(&tr(0, 3, 0, 4, 400));
        // Entry C: 1 warp (most recent).
        t.observe(&tr(0, 5, 0, 6, 400));
        // Insert D: LRU bucket = {A, B} (oldest half); B has fewer bits.
        t.observe(&tr(0, 7, 0, 8, 400));
        assert!(
            t.entries().iter().any(|e| e.pc1 == Pc(1)),
            "popular old entry A survives"
        );
        assert!(
            !t.entries().iter().any(|e| e.pc1 == Pc(3)),
            "unpopular old entry B evicted"
        );
    }

    #[test]
    fn popcount_only_policy_evicts_globally_fewest() {
        let mut t = TailTable::new(TailTableConfig {
            entries: 3,
            eviction: EvictionPolicy::PopcountOnly,
            ..Default::default()
        });
        for w in 0..3u32 {
            t.observe(&tr(w, 1, 0, 2, 400));
        }
        t.observe(&tr(0, 3, 0, 4, 400));
        for w in 0..2u32 {
            t.observe(&tr(w, 5, 0, 6, 400));
        }
        // Newest entry (pc 3->4) has 1 bit: it goes despite recency.
        t.observe(&tr(0, 7, 0, 8, 400));
        assert!(!t.entries().iter().any(|e| e.pc1 == Pc(3)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = table();
        for w in 0..3u32 {
            t.observe(&tr(w, 10, 0, 20, 400));
        }
        assert!(t.any_trained());
        t.reset();
        assert!(t.entries().is_empty());
        assert!(!t.any_trained());
    }

    #[test]
    fn train_state_bits_match_paper_encoding() {
        assert_eq!(TrainState::NotTrained.bits(), 0b00);
        assert_eq!(TrainState::Observed.bits(), 0b01);
        assert_eq!(TrainState::Promoted.bits(), 0b10);
        assert_eq!(TrainState::Trained.bits(), 0b11);
    }
}

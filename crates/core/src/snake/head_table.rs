//! The Head table (§3.1).
//!
//! Stores, per warp, the last executed load PC and its requested base
//! address. Whenever a warp executes a new load, the table emits the
//! *transition* — `(warp, previous PC, current PC, address stride)` —
//! which is what trains the Tail table (Fig 12 ❶).
//!
//! Hardware note: the paper sizes the table at `N = warps/2` rows with
//! *doubled* warp-id/base-address columns so that a greedy scheduler
//! (GTO) interleaving two warps on one row does not destroy the
//! inter-warp history (§5.5, Table 3: 14 bytes × 32 entries = 448 B).
//! [`HeadLayout`] models all three options: the idealized one-record-
//! per-warp table, the paper's paired rows with doubled columns, and
//! the cheaper single-column paired row the doubling defends against.

use snake_sim::json::Value;
use snake_sim::snapshot::{self, SnapshotError};
use snake_sim::{Address, Pc, WarpId};

/// A Head-table update result: the load-to-load transition of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The warp that executed both loads.
    pub warp: WarpId,
    /// Previous load PC (`PC1` in the Tail table).
    pub prev_pc: Pc,
    /// Previous load base address.
    pub prev_addr: Address,
    /// Current load PC (`PC2` in the Tail table).
    pub cur_pc: Pc,
    /// Current load base address.
    pub cur_addr: Address,
}

impl Transition {
    /// The inter-thread stride between the two loads.
    pub fn stride(&self) -> i64 {
        self.cur_addr.stride_from(self.prev_addr)
    }
}

/// Physical organization of the Head table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeadLayout {
    /// Idealized: one `(PC, address)` record per warp. Equivalent to
    /// the paper's paired layout when paired warps execute the same
    /// PCs (the common SIMT case); used as the default.
    #[default]
    PerWarp,
    /// The paper's layout (§5.5): `warps/2` rows, each with *one* PC
    /// column and **two** `(warp id, base address)` slots, so both
    /// warps of a pair keep their base address when a greedy scheduler
    /// interleaves them.
    PairedDoubled,
    /// The cheaper organization the doubling defends against: paired
    /// rows with a *single* `(warp id, base address)` slot — the
    /// second warp of a pair evicts the first's history on every
    /// interleaving (ablation for the §5.5 claim).
    PairedSingle,
}

#[derive(Debug, Clone, Copy, Default)]
struct PairedRow {
    /// The row's shared last-executed load PC.
    pc: Option<Pc>,
    /// Up to two `(warp, base address)` slots.
    slots: [Option<(WarpId, Address)>; 2],
}

/// The Head table.
#[derive(Debug, Clone)]
pub struct HeadTable {
    layout: HeadLayout,
    /// PerWarp storage.
    entries: Vec<Option<(Pc, Address)>>,
    /// Paired-row storage.
    rows: Vec<PairedRow>,
}

impl HeadTable {
    /// Creates a table for `warps` resident warps with the idealized
    /// per-warp layout.
    ///
    /// # Panics
    ///
    /// Panics if `warps` is zero.
    pub fn new(warps: u32) -> Self {
        HeadTable::with_layout(warps, HeadLayout::PerWarp)
    }

    /// Creates a table with an explicit physical layout.
    ///
    /// # Panics
    ///
    /// Panics if `warps` is zero.
    pub fn with_layout(warps: u32, layout: HeadLayout) -> Self {
        assert!(warps > 0, "head table needs at least one warp row");
        HeadTable {
            layout,
            entries: vec![None; warps as usize],
            rows: vec![PairedRow::default(); warps.div_ceil(2) as usize],
        }
    }

    /// The layout in use.
    pub fn layout(&self) -> HeadLayout {
        self.layout
    }

    /// Number of warp rows.
    pub fn warps(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Records that `warp` executed a load at `pc` for `addr`; returns
    /// the transition from the warp's previous load, if any.
    ///
    /// Warps beyond the table's capacity alias onto existing rows
    /// (modulo), as bounded hardware would.
    pub fn update(&mut self, warp: WarpId, pc: Pc, addr: Address) -> Option<Transition> {
        match self.layout {
            HeadLayout::PerWarp => {
                let idx = warp.index() % self.entries.len();
                let prev = self.entries[idx].replace((pc, addr));
                prev.map(|(prev_pc, prev_addr)| Transition {
                    warp,
                    prev_pc,
                    prev_addr,
                    cur_pc: pc,
                    cur_addr: addr,
                })
            }
            HeadLayout::PairedDoubled | HeadLayout::PairedSingle => {
                let slots = if self.layout == HeadLayout::PairedDoubled {
                    2
                } else {
                    1
                };
                let idx = (warp.index() / 2) % self.rows.len();
                let row = &mut self.rows[idx];
                // A transition exists only if this warp still holds a
                // slot *and* the row's shared PC is its previous PC
                // (the pair partner may have overwritten it).
                let prev = row.slots[..slots]
                    .iter()
                    .flatten()
                    .find(|(w, _)| *w == warp)
                    .map(|(_, a)| *a)
                    .zip(row.pc);
                // Update: shared PC column takes the new PC; this
                // warp's slot takes the new address (evicting the
                // partner when only one slot exists).
                row.pc = Some(pc);
                let slot = row.slots[..slots]
                    .iter()
                    .position(|s| s.is_some_and(|(w, _)| w == warp))
                    .or_else(|| row.slots[..slots].iter().position(|s| s.is_none()))
                    .unwrap_or(0);
                row.slots[slot] = Some((warp, addr));
                prev.map(|(prev_addr, prev_pc)| Transition {
                    warp,
                    prev_pc,
                    prev_addr,
                    cur_pc: pc,
                    cur_addr: addr,
                })
            }
        }
    }

    /// The last recorded `(PC, address)` for `warp`, if any.
    pub fn last(&self, warp: WarpId) -> Option<(Pc, Address)> {
        match self.layout {
            HeadLayout::PerWarp => self.entries[warp.index() % self.entries.len()],
            HeadLayout::PairedDoubled | HeadLayout::PairedSingle => {
                let slots = if self.layout == HeadLayout::PairedDoubled {
                    2
                } else {
                    1
                };
                let row = &self.rows[(warp.index() / 2) % self.rows.len()];
                row.slots[..slots]
                    .iter()
                    .flatten()
                    .find(|(w, _)| *w == warp)
                    .and_then(|(_, a)| row.pc.map(|pc| (pc, *a)))
            }
        }
    }

    /// Clears all rows (kernel boundary).
    pub fn reset(&mut self) {
        self.entries.fill(None);
        self.rows.fill(PairedRow::default());
    }

    /// Serializes both storage organizations for a checkpoint (the
    /// layout itself is configuration and is not captured).
    pub fn save_state(&self) -> Value {
        let entries = self
            .entries
            .iter()
            .map(|e| match e {
                None => Value::Null,
                Some((pc, addr)) => {
                    Value::Arr(vec![Value::u64(u64::from(pc.0)), Value::u64(addr.raw())])
                }
            })
            .collect();
        let slot = |s: &Option<(WarpId, Address)>| match s {
            None => Value::Null,
            Some((w, a)) => Value::Arr(vec![Value::u64(u64::from(w.0)), Value::u64(a.raw())]),
        };
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Value::Arr(vec![
                    r.pc.map_or(Value::Null, |pc| Value::u64(u64::from(pc.0))),
                    slot(&r.slots[0]),
                    slot(&r.slots[1]),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("entries".into(), Value::Arr(entries)),
            ("rows".into(), Value::Arr(rows)),
        ])
    }

    /// Restores state captured by [`HeadTable::save_state`] onto a
    /// table built with the same `warps`/`layout`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when the row counts disagree with
    /// this table's construction or an entry does not decode.
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let bad = || SnapshotError::malformed("head table entry does not decode");
        let pair = |item: &Value| -> Result<Option<(u32, u64)>, SnapshotError> {
            match item {
                Value::Null => Ok(None),
                other => {
                    let row = other.as_arr().ok_or_else(bad)?;
                    match row {
                        [a, b] => Ok(Some((
                            a.as_u32().ok_or_else(bad)?,
                            b.as_u64().ok_or_else(bad)?,
                        ))),
                        _ => Err(bad()),
                    }
                }
            }
        };
        let entries = snapshot::arr_field(v, "entries")?;
        let rows = snapshot::arr_field(v, "rows")?;
        if entries.len() != self.entries.len() || rows.len() != self.rows.len() {
            return Err(SnapshotError::malformed(format!(
                "head table shape mismatch: checkpoint {}x{} rows, table {}x{}",
                entries.len(),
                rows.len(),
                self.entries.len(),
                self.rows.len()
            )));
        }
        let mut new_entries = Vec::with_capacity(entries.len());
        for e in entries {
            new_entries.push(pair(e)?.map(|(pc, addr)| (Pc(pc), Address(addr))));
        }
        let mut new_rows = Vec::with_capacity(rows.len());
        for r in rows {
            let row = r.as_arr().ok_or_else(bad)?;
            let [pc, s0, s1] = row else {
                return Err(bad());
            };
            let pc = match pc {
                Value::Null => None,
                other => Some(Pc(other.as_u32().ok_or_else(bad)?)),
            };
            let decode_slot = |s: &Value| -> Result<Option<(WarpId, Address)>, SnapshotError> {
                Ok(pair(s)?.map(|(w, a)| (WarpId(w), Address(a))))
            };
            new_rows.push(PairedRow {
                pc,
                slots: [decode_slot(s0)?, decode_slot(s1)?],
            });
        }
        self.entries = new_entries;
        self.rows = new_rows;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_load_yields_no_transition() {
        let mut h = HeadTable::new(4);
        assert!(h.update(WarpId(0), Pc(10), Address(1000)).is_none());
        assert_eq!(h.last(WarpId(0)), Some((Pc(10), Address(1000))));
    }

    #[test]
    fn second_load_yields_transition_with_stride() {
        let mut h = HeadTable::new(4);
        h.update(WarpId(1), Pc(10), Address(1000));
        let t = h.update(WarpId(1), Pc(20), Address(600)).unwrap();
        assert_eq!(t.prev_pc, Pc(10));
        assert_eq!(t.cur_pc, Pc(20));
        assert_eq!(t.stride(), -400);
    }

    #[test]
    fn warps_do_not_interfere() {
        let mut h = HeadTable::new(4);
        h.update(WarpId(0), Pc(10), Address(0));
        h.update(WarpId(1), Pc(10), Address(128));
        let t0 = h.update(WarpId(0), Pc(20), Address(64)).unwrap();
        assert_eq!(t0.stride(), 64);
        let t1 = h.update(WarpId(1), Pc(20), Address(256)).unwrap();
        assert_eq!(t1.stride(), 128);
    }

    #[test]
    fn overflow_warps_alias() {
        let mut h = HeadTable::new(2);
        h.update(WarpId(0), Pc(1), Address(0));
        // Warp 2 aliases onto row 0.
        let t = h.update(WarpId(2), Pc(2), Address(128)).unwrap();
        assert_eq!(t.prev_pc, Pc(1));
    }

    #[test]
    fn paired_doubled_survives_pair_interleaving() {
        // Warps 0 and 1 share a row; with doubled slots both keep
        // their base address across interleaving on the same PC.
        let mut h = HeadTable::with_layout(4, HeadLayout::PairedDoubled);
        assert!(h.update(WarpId(0), Pc(10), Address(0)).is_none());
        assert!(h.update(WarpId(1), Pc(10), Address(128)).is_none());
        let t0 = h.update(WarpId(0), Pc(20), Address(400)).unwrap();
        assert_eq!(t0.prev_pc, Pc(10));
        assert_eq!(t0.prev_addr, Address(0));
        let t1 = h.update(WarpId(1), Pc(20), Address(528)).unwrap();
        // The shared PC column was overwritten to 20 by warp 0; warp 1
        // therefore attributes its transition to PC 20 — the benign
        // SIMT case is when pairs run the same PCs, as here.
        assert_eq!(t1.prev_addr, Address(128));
    }

    #[test]
    fn paired_single_loses_the_partner_history() {
        let mut h = HeadTable::with_layout(4, HeadLayout::PairedSingle);
        assert!(h.update(WarpId(0), Pc(10), Address(0)).is_none());
        // Warp 1 evicts warp 0's only slot.
        assert!(h.update(WarpId(1), Pc(10), Address(128)).is_none());
        // Warp 0's next load finds no slot: the transition is lost.
        assert!(h.update(WarpId(0), Pc(20), Address(400)).is_none());
    }

    #[test]
    fn paired_layouts_report_and_reset() {
        let mut h = HeadTable::with_layout(4, HeadLayout::PairedDoubled);
        assert_eq!(h.layout(), HeadLayout::PairedDoubled);
        h.update(WarpId(2), Pc(1), Address(64));
        assert_eq!(h.last(WarpId(2)), Some((Pc(1), Address(64))));
        assert_eq!(h.last(WarpId(3)), None);
        h.reset();
        assert_eq!(h.last(WarpId(2)), None);
    }

    #[test]
    fn reset_clears() {
        let mut h = HeadTable::new(2);
        h.update(WarpId(0), Pc(1), Address(0));
        h.reset();
        assert!(h.last(WarpId(0)).is_none());
        assert!(h.update(WarpId(0), Pc(2), Address(4)).is_none());
    }
}

//! The Snake prefetcher (§3): chain-of-strides detection on the Head
//! and Tail tables, prefetch generation with chain walking, store
//! decoupling, and throttling.

pub mod head_table;
pub mod tail_table;
pub mod throttle;

use snake_sim::json::Value;
use snake_sim::snapshot::{self, SnapshotError};
use snake_sim::{
    AccessEvent, Address, KernelTrace, PrefetchContext, PrefetchPlacement, PrefetchRequest,
    Prefetcher, PrefetcherEvent, WalkStop,
};

use head_table::{HeadLayout, HeadTable};
use tail_table::{TailTable, TailTableConfig};
use throttle::{Throttle, ThrottleConfig};

/// Configuration of the Snake prefetcher and its ablation variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnakeConfig {
    /// Tail-table knobs (capacity, promote threshold, eviction).
    pub tail: TailTableConfig,
    /// Head-table rows (should equal the SM's resident warps).
    pub head_warps: u32,
    /// Physical Head-table organization (§5.5 ablation).
    pub head_layout: HeadLayout,
    /// Maximum inter-thread chain-walk depth per trigger.
    pub chain_depth: usize,
    /// Future warps covered per inter-warp trigger.
    pub inter_warp_degree: u32,
    /// Whether intra-warp and inter-warp strides are exploited
    /// (s-Snake turns this off to isolate the chain contribution).
    pub use_fixed_strides: bool,
    /// Throttle configuration.
    pub throttle: ThrottleConfig,
    /// Where prefetched lines are stored.
    pub placement: PrefetchPlacement,
}

impl Default for SnakeConfig {
    fn default() -> Self {
        SnakeConfig {
            tail: TailTableConfig::default(),
            head_warps: 64,
            head_layout: HeadLayout::PerWarp,
            chain_depth: 16,
            inter_warp_degree: 2,
            use_fixed_strides: true,
            throttle: ThrottleConfig::default(),
            placement: PrefetchPlacement::Decoupled,
        }
    }
}

impl SnakeConfig {
    /// Full Snake (the paper's headline configuration).
    pub fn snake() -> Self {
        SnakeConfig::default()
    }

    /// `s-Snake`: chains of strides only, no intra-/inter-warp fixed
    /// strides (§4, comparison point 6).
    pub fn s_snake() -> Self {
        SnakeConfig {
            use_fixed_strides: false,
            ..Default::default()
        }
    }

    /// `Snake-DT`: no decoupling and no throttling (comparison point 7).
    pub fn snake_dt() -> Self {
        SnakeConfig {
            throttle: ThrottleConfig {
                enabled: false,
                ..Default::default()
            },
            placement: PrefetchPlacement::PlainL1,
            ..Default::default()
        }
    }

    /// `Snake-T`: decoupling without throttling (comparison point 8).
    pub fn snake_t() -> Self {
        SnakeConfig {
            throttle: ThrottleConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// `Isolated-Snake`: prefetches go to a dedicated buffer of
    /// `lines` cache lines (§5.7).
    pub fn isolated(lines: u32) -> Self {
        SnakeConfig {
            placement: PrefetchPlacement::Isolated { lines },
            ..Default::default()
        }
    }
}

/// The Snake prefetcher.
///
/// # Examples
///
/// ```
/// use snake_core::snake::{Snake, SnakeConfig};
/// use snake_sim::Prefetcher;
///
/// let snake = Snake::new(SnakeConfig::snake());
/// assert_eq!(snake.name(), "snake");
/// ```
#[derive(Debug, Clone)]
pub struct Snake {
    cfg: SnakeConfig,
    head: HeadTable,
    tail: TailTable,
    throttle: Throttle,
    name: &'static str,
    /// Chain-walk telemetry recorded only when
    /// [`PrefetchContext::telemetry`] is set, drained by the SM.
    events: Vec<PrefetcherEvent>,
}

impl Snake {
    /// Creates a Snake instance from a configuration.
    pub fn new(cfg: SnakeConfig) -> Self {
        let name = match (cfg.use_fixed_strides, cfg.throttle.enabled, cfg.placement) {
            (false, _, _) => "s-snake",
            (true, false, PrefetchPlacement::PlainL1) => "snake-dt",
            (true, false, PrefetchPlacement::Decoupled) => "snake-t",
            (true, _, PrefetchPlacement::Isolated { .. }) => "isolated-snake",
            _ => "snake",
        };
        let mut throttle = Throttle::new(cfg.throttle);
        throttle.set_max_depth(cfg.chain_depth);
        Snake {
            head: HeadTable::with_layout(cfg.head_warps, cfg.head_layout),
            tail: TailTable::new(cfg.tail),
            throttle,
            cfg,
            name,
            events: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnakeConfig {
        &self.cfg
    }

    /// Read access to the Tail table (diagnostics, examples, Fig 8).
    pub fn tail_table(&self) -> &TailTable {
        &self.tail
    }
}

impl Prefetcher for Snake {
    fn name(&self) -> &str {
        self.name
    }

    fn placement(&self) -> PrefetchPlacement {
        self.cfg.placement
    }

    fn on_kernel_launch(&mut self, _trace: &KernelTrace) {
        self.head.reset();
        self.tail.reset();
        self.throttle.reset();
        self.events.clear();
    }

    fn on_demand_access(
        &mut self,
        event: &AccessEvent,
        ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    ) {
        // Detection always runs: throttling halts issuing, not learning.
        if let Some(transition) = self.head.update(event.warp, event.pc, event.addr) {
            self.tail.observe(&transition);
        }

        self.throttle.update(ctx);
        if ctx.telemetry {
            self.events.push(PrefetcherEvent::ChainWalkStart {
                warp: event.warp,
                pc: event.pc,
            });
        }
        if self.throttle.is_throttled(ctx.cycle) {
            if ctx.telemetry {
                self.events.push(PrefetcherEvent::ChainWalkStop {
                    steps: 0,
                    reason: WalkStop::Throttled,
                });
            }
            return;
        }

        let mut targets: Vec<Address> = Vec::new();
        let summary = self.tail.generate(
            event.warp,
            event.pc,
            event.addr,
            self.throttle.depth(),
            self.cfg.inter_warp_degree,
            self.cfg.use_fixed_strides,
            &mut targets,
        );
        if ctx.telemetry {
            for (i, t) in targets.iter().take(summary.chain_targets).enumerate() {
                self.events.push(PrefetcherEvent::ChainWalkStep {
                    depth: i as u32 + 1,
                    addr: *t,
                });
            }
            self.events.push(PrefetcherEvent::ChainWalkStop {
                steps: summary.steps,
                reason: if summary.exhausted {
                    WalkStop::DepthLimit
                } else {
                    WalkStop::NoEntry
                },
            });
        }
        out.extend(targets.into_iter().map(PrefetchRequest::new));
    }

    fn throttled(&self, now: snake_sim::Cycle) -> bool {
        self.throttle.is_throttled(now)
    }

    fn trained(&self) -> bool {
        self.tail.any_trained()
    }

    fn chain_depth(&self) -> u32 {
        self.throttle.depth() as u32
    }

    fn drain_events(&mut self, out: &mut Vec<PrefetcherEvent>) {
        out.append(&mut self.events);
    }

    /// Captures the Head table, Tail table, and throttle state machine.
    /// The telemetry buffer is not captured: checkpoints are taken at
    /// cycle boundaries, after the SM has drained it.
    fn save_state(&self) -> Value {
        Value::Obj(vec![
            ("head".into(), self.head.save_state()),
            ("tail".into(), self.tail.save_state()),
            ("throttle".into(), self.throttle.save_state()),
        ])
    }

    fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.head.restore_state(snapshot::field(v, "head")?)?;
        self.tail.restore_state(snapshot::field(v, "tail")?)?;
        self.throttle
            .restore_state(snapshot::field(v, "throttle")?)?;
        self.events.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::{AccessOutcome, CtaId, Cycle, Pc, SmId, WarpId};

    fn ev(warp: u32, pc: u32, addr: u64, cycle: u64) -> AccessEvent {
        AccessEvent {
            sm: SmId(0),
            warp: WarpId(warp),
            cta: CtaId(0),
            pc: Pc(pc),
            addr: Address(addr),
            outcome: AccessOutcome::Miss,
            cycle: Cycle(cycle),
        }
    }

    fn ctx(cycle: u64) -> PrefetchContext {
        PrefetchContext {
            cycle: Cycle(cycle),
            bw_utilization: 0.0,
            free_lines: 64,
            total_lines: 128,
            prefetch_overrun: false,
            telemetry: false,
        }
    }

    /// Trains the chain pc1 -(s)-> pc2 on three warps.
    fn train_pair(s: &mut Snake, pc1: u32, pc2: u32, stride: i64) {
        let mut out = Vec::new();
        for w in 0..3u32 {
            let base = 100_000 * u64::from(w);
            s.on_demand_access(&ev(w, pc1, base, 0), &ctx(0), &mut out);
            s.on_demand_access(
                &ev(w, pc2, base.wrapping_add_signed(stride), 0),
                &ctx(0),
                &mut out,
            );
            // Break the warp's chain so pc2 -> pc1 noise is distinct.
            s.on_demand_access(
                &ev(w, 999, base + 50_000 + u64::from(w), 0),
                &ctx(0),
                &mut out,
            );
        }
        out.clear();
    }

    #[test]
    fn trained_chain_produces_prefetch() {
        let mut s = Snake::new(SnakeConfig::snake());
        train_pair(&mut s, 10, 20, 400);
        let mut out = Vec::new();
        // A fresh warp executes pc 10: the promoted chain fires.
        s.on_demand_access(&ev(7, 10, 1_000_000, 10), &ctx(10), &mut out);
        assert!(
            out.iter().any(|r| r.addr == Address(1_000_400)),
            "expected chain prefetch, got {out:?}"
        );
    }

    #[test]
    fn untrained_snake_is_silent() {
        let mut s = Snake::new(SnakeConfig::snake());
        let mut out = Vec::new();
        s.on_demand_access(&ev(0, 10, 0, 0), &ctx(0), &mut out);
        s.on_demand_access(&ev(0, 20, 400, 0), &ctx(0), &mut out);
        assert!(out.is_empty());
        assert!(!s.trained());
    }

    #[test]
    fn throttle_on_prefetch_overrun_suppresses_issuing() {
        let mut s = Snake::new(SnakeConfig::snake());
        train_pair(&mut s, 10, 20, 400);
        let full = PrefetchContext {
            cycle: Cycle(100),
            free_lines: 0,
            // The L1 reports that unconsumed prefetched data started
            // dying: the space trigger fires.
            prefetch_overrun: true,
            ..ctx(100)
        };
        let mut out = Vec::new();
        s.on_demand_access(&ev(7, 10, 1_000_000, 100), &full, &mut out);
        assert!(out.is_empty(), "space-throttled Snake must not issue");
        assert!(s.throttled(Cycle(100)));
        // 50 cycles later it resumes.
        let mut out = Vec::new();
        s.on_demand_access(&ev(8, 10, 2_000_000, 151), &ctx(151), &mut out);
        assert!(!out.is_empty());
    }

    #[test]
    fn bandwidth_throttle_suppresses_issuing() {
        let mut s = Snake::new(SnakeConfig::snake());
        train_pair(&mut s, 10, 20, 400);
        let busy = PrefetchContext {
            bw_utilization: 0.8,
            ..ctx(10)
        };
        let mut out = Vec::new();
        s.on_demand_access(&ev(7, 10, 1_000_000, 10), &busy, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn snake_dt_uses_plain_placement_and_no_throttle() {
        let s = Snake::new(SnakeConfig::snake_dt());
        assert_eq!(s.name(), "snake-dt");
        assert_eq!(s.placement(), PrefetchPlacement::PlainL1);
        let mut s = s;
        let full = PrefetchContext {
            free_lines: 0,
            ..ctx(0)
        };
        train_pair(&mut s, 10, 20, 400);
        let mut out = Vec::new();
        s.on_demand_access(&ev(7, 10, 1_000_000, 0), &full, &mut out);
        assert!(!out.is_empty(), "DT never throttles");
    }

    #[test]
    fn variant_names() {
        assert_eq!(Snake::new(SnakeConfig::snake()).name(), "snake");
        assert_eq!(Snake::new(SnakeConfig::s_snake()).name(), "s-snake");
        assert_eq!(Snake::new(SnakeConfig::snake_t()).name(), "snake-t");
        assert_eq!(
            Snake::new(SnakeConfig::isolated(32)).name(),
            "isolated-snake"
        );
    }

    #[test]
    fn telemetry_reports_chain_walks() {
        let mut s = Snake::new(SnakeConfig::snake());
        train_pair(&mut s, 10, 20, 400);
        let telem = PrefetchContext {
            telemetry: true,
            ..ctx(10)
        };
        let mut out = Vec::new();
        s.on_demand_access(&ev(7, 10, 1_000_000, 10), &telem, &mut out);
        let mut events = Vec::new();
        s.drain_events(&mut events);
        assert!(matches!(
            events.first(),
            Some(PrefetcherEvent::ChainWalkStart { .. })
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, PrefetcherEvent::ChainWalkStep { .. })));
        assert!(matches!(
            events.last(),
            Some(PrefetcherEvent::ChainWalkStop { .. })
        ));
        // A second drain is empty, and without telemetry nothing is
        // recorded at all.
        let mut events = Vec::new();
        s.drain_events(&mut events);
        assert!(events.is_empty());
        s.on_demand_access(&ev(8, 10, 2_000_000, 11), &ctx(11), &mut out);
        s.drain_events(&mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn telemetry_reports_throttled_walks() {
        let mut s = Snake::new(SnakeConfig::snake());
        train_pair(&mut s, 10, 20, 400);
        let full = PrefetchContext {
            free_lines: 0,
            prefetch_overrun: true,
            telemetry: true,
            ..ctx(100)
        };
        let mut out = Vec::new();
        s.on_demand_access(&ev(7, 10, 1_000_000, 100), &full, &mut out);
        let mut events = Vec::new();
        s.drain_events(&mut events);
        assert!(events.iter().any(|e| matches!(
            e,
            PrefetcherEvent::ChainWalkStop {
                reason: WalkStop::Throttled,
                ..
            }
        )));
    }

    #[test]
    fn kernel_launch_resets_state() {
        let mut s = Snake::new(SnakeConfig::snake());
        train_pair(&mut s, 10, 20, 400);
        assert!(s.trained());
        let kernel =
            snake_sim::KernelTrace::new("k", vec![snake_sim::WarpTrace::new(CtaId(0), vec![])]);
        s.on_kernel_launch(&kernel);
        assert!(!s.trained());
    }

    #[test]
    fn detection_continues_while_throttled() {
        let mut s = Snake::new(SnakeConfig::snake());
        let full = PrefetchContext {
            free_lines: 0,
            ..ctx(0)
        };
        let mut out = Vec::new();
        // Train entirely under throttle pressure.
        for w in 0..3u32 {
            let base = 100_000 * u64::from(w);
            s.on_demand_access(&ev(w, 10, base, 0), &full, &mut out);
            s.on_demand_access(&ev(w, 20, base + 400, 0), &full, &mut out);
            s.on_demand_access(
                &ev(w, 999, base + 77_000 + u64::from(w), 0),
                &full,
                &mut out,
            );
        }
        assert!(s.trained(), "learning must continue under throttle");
    }
}

//! The throttling mechanism (§3.3).
//!
//! Two triggers halt prefetching:
//!
//! 1. **Space** — the unified cache ran out of free space and the
//!    prefetcher started evicting its own unconsumed lines (overrun):
//!    halt for a fixed pause so resident prefetched data gets consumed
//!    (the paper settles on 50 cycles, Fig 23).
//! 2. **Bandwidth** — measured interconnect utilization reaches 70% of
//!    peak: halt until it falls back to 50% (hysteresis).

use snake_sim::json::Value;
use snake_sim::snapshot::{self, SnapshotError};
use snake_sim::{Cycle, PrefetchContext};

/// Throttle configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleConfig {
    /// Master switch (Snake-DT/Snake-T disable it).
    pub enabled: bool,
    /// Cycles to pause after a space trigger (paper: 50).
    pub pause_cycles: u64,
    /// Utilization at which the bandwidth trigger halts (paper: 0.70).
    pub bw_halt: f64,
    /// Utilization at which the bandwidth trigger releases (paper: 0.50).
    pub bw_resume: f64,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig {
            enabled: true,
            pause_cycles: 50,
            bw_halt: 0.70,
            bw_resume: 0.50,
        }
    }
}

/// Throttle state machine.
///
/// Besides halting, the throttle *controls the chain-walk depth*
/// (§3.2: "the depth of Inter-thread prefetching ... is controlled by
/// a throttling mechanism"): overruns halve the depth, sustained calm
/// grows it back toward the configured maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throttle {
    cfg: ThrottleConfig,
    space_halted_until: Cycle,
    bw_halted: bool,
    depth: usize,
    max_depth: usize,
    calm_events: u32,
}

impl Throttle {
    /// Creates a throttle.
    ///
    /// # Panics
    ///
    /// Panics if `bw_resume > bw_halt` (the hysteresis would invert).
    pub fn new(cfg: ThrottleConfig) -> Self {
        assert!(
            cfg.bw_resume <= cfg.bw_halt,
            "resume threshold must not exceed halt threshold"
        );
        Throttle {
            cfg,
            space_halted_until: Cycle::ZERO,
            bw_halted: false,
            depth: 2,
            max_depth: 16,
            calm_events: 0,
        }
    }

    /// Sets the maximum chain-walk depth the throttle may grow to.
    pub fn set_max_depth(&mut self, max_depth: usize) {
        self.max_depth = max_depth.max(1);
        self.depth = self.depth.min(self.max_depth);
    }

    /// The current throttling-controlled chain-walk depth. When the
    /// throttle is disabled (Snake-DT/Snake-T) the full configured
    /// depth is used unconditionally.
    pub fn depth(&self) -> usize {
        if self.cfg.enabled {
            self.depth
        } else {
            self.max_depth
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ThrottleConfig {
        &self.cfg
    }

    /// Updates triggers from the current machine state. Call on every
    /// prefetcher event.
    pub fn update(&mut self, ctx: &PrefetchContext) {
        if !self.cfg.enabled {
            return;
        }
        if ctx.prefetch_overrun {
            let until = ctx.cycle.plus(self.cfg.pause_cycles);
            if until > self.space_halted_until {
                self.space_halted_until = until;
            }
            // Outran consumption: back the chain depth off.
            self.depth = (self.depth / 2).max(1);
            self.calm_events = 0;
        } else {
            self.calm_events += 1;
            if self.calm_events >= 64 {
                self.depth = (self.depth + 1).min(self.max_depth);
                self.calm_events = 0;
            }
        }
        if self.bw_halted {
            if ctx.bw_utilization <= self.cfg.bw_resume {
                self.bw_halted = false;
            }
        } else if ctx.bw_utilization >= self.cfg.bw_halt {
            self.bw_halted = true;
        }
    }

    /// Whether prefetching is currently halted.
    pub fn is_throttled(&self, now: Cycle) -> bool {
        self.cfg.enabled && (self.bw_halted || now < self.space_halted_until)
    }

    /// Clears all state (kernel boundary).
    pub fn reset(&mut self) {
        self.space_halted_until = Cycle::ZERO;
        self.bw_halted = false;
        self.depth = 2;
        self.calm_events = 0;
    }

    /// Serializes the state machine for a checkpoint (the thresholds
    /// and `max_depth` are configuration and are not captured).
    pub fn save_state(&self) -> Value {
        Value::Obj(vec![
            (
                "space_halted_until".into(),
                Value::u64(self.space_halted_until.0),
            ),
            ("bw_halted".into(), Value::Bool(self.bw_halted)),
            ("depth".into(), Value::u64(self.depth as u64)),
            (
                "calm_events".into(),
                Value::u64(u64::from(self.calm_events)),
            ),
        ])
    }

    /// Restores state captured by [`Throttle::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when a field is missing or does not
    /// decode.
    pub fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let space_halted_until = Cycle(snapshot::u64_field(v, "space_halted_until")?);
        let bw_halted = snapshot::bool_field(v, "bw_halted")?;
        let depth = snapshot::usize_field(v, "depth")?;
        let calm_events = snapshot::u32_field(v, "calm_events")?;
        self.space_halted_until = space_halted_until;
        self.bw_halted = bw_halted;
        self.depth = depth.clamp(1, self.max_depth);
        self.calm_events = calm_events;
        Ok(())
    }
}

impl Default for Throttle {
    fn default() -> Self {
        Throttle::new(ThrottleConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cycle: u64, bw: f64, free: u32) -> PrefetchContext {
        PrefetchContext {
            cycle: Cycle(cycle),
            bw_utilization: bw,
            free_lines: free,
            total_lines: 128,
            // The simulator raises the overrun flag when the cache is
            // saturated and unused prefetches start dying.
            prefetch_overrun: free == 0,
            telemetry: false,
        }
    }

    #[test]
    fn space_trigger_halts_for_pause_window() {
        let mut t = Throttle::default();
        t.update(&ctx(100, 0.0, 0));
        assert!(t.is_throttled(Cycle(100)));
        assert!(t.is_throttled(Cycle(149)));
        assert!(!t.is_throttled(Cycle(150)));
    }

    #[test]
    fn bandwidth_trigger_has_hysteresis() {
        let mut t = Throttle::default();
        t.update(&ctx(0, 0.72, 64));
        assert!(t.is_throttled(Cycle(0)));
        // Falling to 0.6 is not enough to resume.
        t.update(&ctx(10, 0.60, 64));
        assert!(t.is_throttled(Cycle(10)));
        // 0.5 resumes.
        t.update(&ctx(20, 0.50, 64));
        assert!(!t.is_throttled(Cycle(20)));
    }

    #[test]
    fn disabled_throttle_never_halts() {
        let mut t = Throttle::new(ThrottleConfig {
            enabled: false,
            ..Default::default()
        });
        t.update(&ctx(0, 1.0, 0));
        assert!(!t.is_throttled(Cycle(0)));
    }

    #[test]
    fn repeated_space_triggers_extend_the_window() {
        let mut t = Throttle::default();
        t.update(&ctx(100, 0.0, 0));
        t.update(&ctx(120, 0.0, 0));
        assert!(t.is_throttled(Cycle(165)));
        assert!(!t.is_throttled(Cycle(170)));
    }

    #[test]
    #[should_panic(expected = "resume threshold")]
    fn inverted_hysteresis_rejected() {
        let _ = Throttle::new(ThrottleConfig {
            bw_halt: 0.4,
            bw_resume: 0.6,
            ..Default::default()
        });
    }

    #[test]
    fn reset_clears_halts() {
        let mut t = Throttle::default();
        t.update(&ctx(0, 0.9, 0));
        assert!(t.is_throttled(Cycle(1)));
        t.reset();
        assert!(!t.is_throttled(Cycle(1)));
    }
}

//! Intra-warp stride prefetcher (Lee et al. \[29\], §2): each thread
//! prefetches for the next iteration of the same load in the same
//! warp. Strong with deep loops, weak when loops are replaced by
//! parallelism — the limitation Snake's chains address.

use std::collections::HashMap;

use snake_sim::json::Value;
use snake_sim::snapshot::{self, SnapshotError};
use snake_sim::{
    AccessEvent, Address, KernelTrace, Pc, PrefetchContext, PrefetchRequest, Prefetcher, WarpId,
};

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    last_addr: Address,
    stride: i64,
    /// Consecutive confirmations of `stride`.
    confidence: u8,
    /// Insertion-order stamp for FIFO-ish replacement.
    stamp: u64,
}

/// Per-(warp, PC) stride table.
#[derive(Debug, Clone)]
pub struct IntraWarp {
    table: HashMap<(WarpId, Pc), StrideEntry>,
    capacity: usize,
    /// Prefetch distance in iterations once trained.
    degree: u32,
    seq: u64,
}

impl IntraWarp {
    /// Creates a prefetcher with a bounded `capacity`-entry table and
    /// the given prefetch `degree` (iterations ahead).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `degree` is zero.
    pub fn new(capacity: usize, degree: u32) -> Self {
        assert!(capacity > 0 && degree > 0);
        IntraWarp {
            table: HashMap::with_capacity(capacity),
            capacity,
            degree,
            seq: 0,
        }
    }

    fn evict_if_full(&mut self) {
        if self.table.len() >= self.capacity {
            if let Some(&key) = self
                .table
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.table.remove(&key);
            }
        }
    }
}

impl Default for IntraWarp {
    fn default() -> Self {
        // 64 entries: a hardware-credible per-SM stride table. With
        // many resident warps the (warp, PC) key space exceeds this,
        // which is part of why per-warp training scales worse than
        // Snake's shared, promoted chains.
        IntraWarp::new(64, 1)
    }
}

impl Prefetcher for IntraWarp {
    fn name(&self) -> &str {
        "intra-warp"
    }

    fn on_kernel_launch(&mut self, _trace: &KernelTrace) {
        self.table.clear();
        self.seq = 0;
    }

    fn on_demand_access(
        &mut self,
        event: &AccessEvent,
        _ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.seq += 1;
        let key = (event.warp, event.pc);
        let stamp = self.seq;
        match self.table.get_mut(&key) {
            Some(e) => {
                let observed = event.addr.stride_from(e.last_addr);
                if observed == e.stride && observed != 0 {
                    e.confidence = e.confidence.saturating_add(1);
                } else {
                    e.stride = observed;
                    e.confidence = 0;
                }
                e.last_addr = event.addr;
                e.stamp = stamp;
                if e.confidence >= 1 {
                    let stride = e.stride;
                    for k in 1..=i64::from(self.degree) {
                        out.push(PrefetchRequest::new(event.addr.offset(stride * k)));
                    }
                }
            }
            None => {
                self.evict_if_full();
                self.table.insert(
                    key,
                    StrideEntry {
                        last_addr: event.addr,
                        stride: 0,
                        confidence: 0,
                        stamp,
                    },
                );
            }
        }
    }

    /// The table, serialized sorted by `(warp, pc)` so equal state
    /// always produces byte-identical checkpoints despite the
    /// `HashMap`'s arbitrary iteration order.
    fn save_state(&self) -> Value {
        let mut rows: Vec<_> = self.table.iter().collect();
        rows.sort_by_key(|((w, pc), _)| (w.0, pc.0));
        let rows = rows
            .into_iter()
            .map(|((w, pc), e)| {
                Value::Arr(vec![
                    Value::u64(u64::from(w.0)),
                    Value::u64(u64::from(pc.0)),
                    Value::u64(e.last_addr.raw()),
                    snapshot::i64_value(e.stride),
                    Value::u64(u64::from(e.confidence)),
                    Value::u64(e.stamp),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("table".into(), Value::Arr(rows)),
            ("seq".into(), Value::u64(self.seq)),
        ])
    }

    fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let bad = || SnapshotError::malformed("intra-warp table row does not decode");
        let seq = snapshot::u64_field(v, "seq")?;
        let mut table = HashMap::with_capacity(self.capacity);
        for row in snapshot::arr_field(v, "table")? {
            let Some([w, pc, addr, stride, confidence, stamp]) = row.as_arr() else {
                return Err(bad());
            };
            table.insert(
                (
                    WarpId(w.as_u32().ok_or_else(bad)?),
                    Pc(pc.as_u32().ok_or_else(bad)?),
                ),
                StrideEntry {
                    last_addr: Address(addr.as_u64().ok_or_else(bad)?),
                    stride: stride.as_i64().ok_or_else(bad)?,
                    confidence: confidence
                        .as_u32()
                        .and_then(|c| u8::try_from(c).ok())
                        .ok_or_else(bad)?,
                    stamp: stamp.as_u64().ok_or_else(bad)?,
                },
            );
        }
        if table.len() > self.capacity {
            return Err(SnapshotError::malformed(
                "intra-warp checkpoint exceeds table capacity",
            ));
        }
        self.table = table;
        self.seq = seq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::{AccessOutcome, CtaId, Cycle, SmId};

    fn ev(warp: u32, pc: u32, addr: u64) -> AccessEvent {
        AccessEvent {
            sm: SmId(0),
            warp: WarpId(warp),
            cta: CtaId(0),
            pc: Pc(pc),
            addr: Address(addr),
            outcome: AccessOutcome::Miss,
            cycle: Cycle(0),
        }
    }

    fn ctx() -> PrefetchContext {
        PrefetchContext {
            cycle: Cycle(0),
            bw_utilization: 0.0,
            free_lines: 8,
            total_lines: 16,
            prefetch_overrun: false,
            telemetry: false,
        }
    }

    #[test]
    fn trains_after_two_consistent_strides() {
        let mut p = IntraWarp::default();
        let mut out = Vec::new();
        p.on_demand_access(&ev(0, 1, 0), &ctx(), &mut out);
        assert!(out.is_empty(), "cold");
        p.on_demand_access(&ev(0, 1, 128), &ctx(), &mut out);
        assert!(out.is_empty(), "first stride observation");
        p.on_demand_access(&ev(0, 1, 256), &ctx(), &mut out);
        assert_eq!(out, vec![PrefetchRequest::new(Address(384))]);
    }

    #[test]
    fn stride_change_retrains() {
        let mut p = IntraWarp::default();
        let mut out = Vec::new();
        for a in [0u64, 128, 256] {
            p.on_demand_access(&ev(0, 1, a), &ctx(), &mut out);
        }
        out.clear();
        p.on_demand_access(&ev(0, 1, 1000), &ctx(), &mut out);
        assert!(out.is_empty(), "broken stride must not prefetch");
    }

    #[test]
    fn warps_and_pcs_are_independent() {
        let mut p = IntraWarp::default();
        let mut out = Vec::new();
        for a in [0u64, 128, 256] {
            p.on_demand_access(&ev(0, 1, a), &ctx(), &mut out);
        }
        out.clear();
        // Different warp, same PC: untrained.
        p.on_demand_access(&ev(1, 1, 0), &ctx(), &mut out);
        assert!(out.is_empty());
        // Different PC, same warp: untrained.
        p.on_demand_access(&ev(0, 2, 0), &ctx(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn degree_extends_distance() {
        let mut p = IntraWarp::new(16, 3);
        let mut out = Vec::new();
        for a in [0u64, 128, 256] {
            out.clear();
            p.on_demand_access(&ev(0, 1, a), &ctx(), &mut out);
        }
        assert_eq!(
            out,
            vec![
                PrefetchRequest::new(Address(384)),
                PrefetchRequest::new(Address(512)),
                PrefetchRequest::new(Address(640)),
            ]
        );
    }

    #[test]
    fn capacity_bounds_table() {
        let mut p = IntraWarp::new(4, 1);
        let mut out = Vec::new();
        for pc in 0..16u32 {
            p.on_demand_access(&ev(0, pc, 0), &ctx(), &mut out);
        }
        assert!(p.table.len() <= 4);
    }
}

//! Intra-warp stride prefetcher (Lee et al. \[29\], §2): each thread
//! prefetches for the next iteration of the same load in the same
//! warp. Strong with deep loops, weak when loops are replaced by
//! parallelism — the limitation Snake's chains address.

use std::collections::HashMap;

use snake_sim::{
    AccessEvent, Address, KernelTrace, Pc, PrefetchContext, PrefetchRequest, Prefetcher, WarpId,
};

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    last_addr: Address,
    stride: i64,
    /// Consecutive confirmations of `stride`.
    confidence: u8,
    /// Insertion-order stamp for FIFO-ish replacement.
    stamp: u64,
}

/// Per-(warp, PC) stride table.
#[derive(Debug, Clone)]
pub struct IntraWarp {
    table: HashMap<(WarpId, Pc), StrideEntry>,
    capacity: usize,
    /// Prefetch distance in iterations once trained.
    degree: u32,
    seq: u64,
}

impl IntraWarp {
    /// Creates a prefetcher with a bounded `capacity`-entry table and
    /// the given prefetch `degree` (iterations ahead).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `degree` is zero.
    pub fn new(capacity: usize, degree: u32) -> Self {
        assert!(capacity > 0 && degree > 0);
        IntraWarp {
            table: HashMap::with_capacity(capacity),
            capacity,
            degree,
            seq: 0,
        }
    }

    fn evict_if_full(&mut self) {
        if self.table.len() >= self.capacity {
            if let Some(&key) = self
                .table
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.table.remove(&key);
            }
        }
    }
}

impl Default for IntraWarp {
    fn default() -> Self {
        // 64 entries: a hardware-credible per-SM stride table. With
        // many resident warps the (warp, PC) key space exceeds this,
        // which is part of why per-warp training scales worse than
        // Snake's shared, promoted chains.
        IntraWarp::new(64, 1)
    }
}

impl Prefetcher for IntraWarp {
    fn name(&self) -> &str {
        "intra-warp"
    }

    fn on_kernel_launch(&mut self, _trace: &KernelTrace) {
        self.table.clear();
        self.seq = 0;
    }

    fn on_demand_access(
        &mut self,
        event: &AccessEvent,
        _ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.seq += 1;
        let key = (event.warp, event.pc);
        let stamp = self.seq;
        match self.table.get_mut(&key) {
            Some(e) => {
                let observed = event.addr.stride_from(e.last_addr);
                if observed == e.stride && observed != 0 {
                    e.confidence = e.confidence.saturating_add(1);
                } else {
                    e.stride = observed;
                    e.confidence = 0;
                }
                e.last_addr = event.addr;
                e.stamp = stamp;
                if e.confidence >= 1 {
                    let stride = e.stride;
                    for k in 1..=i64::from(self.degree) {
                        out.push(PrefetchRequest::new(event.addr.offset(stride * k)));
                    }
                }
            }
            None => {
                self.evict_if_full();
                self.table.insert(
                    key,
                    StrideEntry {
                        last_addr: event.addr,
                        stride: 0,
                        confidence: 0,
                        stamp,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::{AccessOutcome, CtaId, Cycle, SmId};

    fn ev(warp: u32, pc: u32, addr: u64) -> AccessEvent {
        AccessEvent {
            sm: SmId(0),
            warp: WarpId(warp),
            cta: CtaId(0),
            pc: Pc(pc),
            addr: Address(addr),
            outcome: AccessOutcome::Miss,
            cycle: Cycle(0),
        }
    }

    fn ctx() -> PrefetchContext {
        PrefetchContext {
            cycle: Cycle(0),
            bw_utilization: 0.0,
            free_lines: 8,
            total_lines: 16,
            prefetch_overrun: false,
            telemetry: false,
        }
    }

    #[test]
    fn trains_after_two_consistent_strides() {
        let mut p = IntraWarp::default();
        let mut out = Vec::new();
        p.on_demand_access(&ev(0, 1, 0), &ctx(), &mut out);
        assert!(out.is_empty(), "cold");
        p.on_demand_access(&ev(0, 1, 128), &ctx(), &mut out);
        assert!(out.is_empty(), "first stride observation");
        p.on_demand_access(&ev(0, 1, 256), &ctx(), &mut out);
        assert_eq!(out, vec![PrefetchRequest::new(Address(384))]);
    }

    #[test]
    fn stride_change_retrains() {
        let mut p = IntraWarp::default();
        let mut out = Vec::new();
        for a in [0u64, 128, 256] {
            p.on_demand_access(&ev(0, 1, a), &ctx(), &mut out);
        }
        out.clear();
        p.on_demand_access(&ev(0, 1, 1000), &ctx(), &mut out);
        assert!(out.is_empty(), "broken stride must not prefetch");
    }

    #[test]
    fn warps_and_pcs_are_independent() {
        let mut p = IntraWarp::default();
        let mut out = Vec::new();
        for a in [0u64, 128, 256] {
            p.on_demand_access(&ev(0, 1, a), &ctx(), &mut out);
        }
        out.clear();
        // Different warp, same PC: untrained.
        p.on_demand_access(&ev(1, 1, 0), &ctx(), &mut out);
        assert!(out.is_empty());
        // Different PC, same warp: untrained.
        p.on_demand_access(&ev(0, 2, 0), &ctx(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn degree_extends_distance() {
        let mut p = IntraWarp::new(16, 3);
        let mut out = Vec::new();
        for a in [0u64, 128, 256] {
            out.clear();
            p.on_demand_access(&ev(0, 1, a), &ctx(), &mut out);
        }
        assert_eq!(
            out,
            vec![
                PrefetchRequest::new(Address(384)),
                PrefetchRequest::new(Address(512)),
                PrefetchRequest::new(Address(640)),
            ]
        );
    }

    #[test]
    fn capacity_bounds_table() {
        let mut p = IntraWarp::new(4, 1);
        let mut out = Vec::new();
        for pc in 0..16u32 {
            p.on_demand_access(&ev(0, pc, 0), &ctx(), &mut out);
        }
        assert!(p.table.len() <= 4);
    }
}

//! Inter-warp stride prefetcher (Lee et al. \[29\], §2): threads
//! prefetch for the corresponding threads of *future warps*, exploiting
//! the fixed per-warp stride of index-based addressing. Its weakness is
//! the timeliness/accuracy trade-off: warps in a CTA schedule close in
//! time, so the prefetch often cannot hide the full memory latency.

use std::collections::HashMap;

use snake_sim::json::Value;
use snake_sim::snapshot::{self, SnapshotError};
use snake_sim::{
    AccessEvent, Address, KernelTrace, Pc, PrefetchContext, PrefetchRequest, Prefetcher, WarpId,
};

#[derive(Debug, Clone, Copy)]
struct PcEntry {
    last_warp: WarpId,
    last_addr: Address,
    candidate: Option<i64>,
    /// Saturating confidence in `candidate` (trained at >= 2).
    confidence: u8,
    stamp: u64,
}

/// Per-PC inter-warp stride table.
#[derive(Debug, Clone)]
pub struct InterWarp {
    table: HashMap<Pc, PcEntry>,
    capacity: usize,
    /// Future warps covered per trigger.
    degree: u32,
    /// Distinct warps required to train (3, as in Snake's rule).
    threshold: u32,
    seq: u64,
}

impl InterWarp {
    /// Creates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(capacity: usize, degree: u32, threshold: u32) -> Self {
        assert!(capacity > 0 && degree > 0 && threshold > 0);
        InterWarp {
            table: HashMap::with_capacity(capacity),
            capacity,
            degree,
            threshold,
            seq: 0,
        }
    }
}

impl Default for InterWarp {
    fn default() -> Self {
        InterWarp::new(64, 2, 3)
    }
}

impl Prefetcher for InterWarp {
    fn name(&self) -> &str {
        "inter-warp"
    }

    fn on_kernel_launch(&mut self, _trace: &KernelTrace) {
        self.table.clear();
        self.seq = 0;
    }

    fn on_demand_access(
        &mut self,
        event: &AccessEvent,
        _ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.seq += 1;
        let stamp = self.seq;
        if self.table.len() >= self.capacity && !self.table.contains_key(&event.pc) {
            if let Some(&key) = self
                .table
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.table.remove(&key);
            }
        }
        let e = self.table.entry(event.pc).or_insert(PcEntry {
            last_warp: event.warp,
            last_addr: event.addr,
            candidate: None,
            confidence: 0,
            stamp,
        });
        e.stamp = stamp;
        if event.warp != e.last_warp {
            let dw = i64::from(event.warp.0) - i64::from(e.last_warp.0);
            let delta = event.addr.stride_from(e.last_addr);
            if delta % dw == 0 {
                let per_warp = delta / dw;
                if e.candidate == Some(per_warp) {
                    e.confidence = (e.confidence + 1).min(3);
                } else if e.confidence <= 1 {
                    // Low confidence: adopt the new candidate. (Loop
                    // wrap-around pairs produce transient mismatches;
                    // confidence absorbs them without losing training.)
                    e.candidate = Some(per_warp);
                    e.confidence = 1;
                } else {
                    e.confidence -= 1;
                }
            }
            e.last_warp = event.warp;
            e.last_addr = event.addr;
        }
        // Trained once (threshold - 1) consecutive distinct-warp pairs
        // agreed; `threshold` warps total, matching Snake's 3-warp rule.
        if e.confidence >= (self.threshold - 1) as u8 {
            if let Some(s) = e.candidate {
                for k in 1..=i64::from(self.degree) {
                    out.push(PrefetchRequest::new(event.addr.offset(s * k)));
                }
            }
        }
    }

    /// The table, serialized sorted by PC for byte-identical
    /// checkpoints regardless of `HashMap` iteration order.
    fn save_state(&self) -> Value {
        let mut rows: Vec<_> = self.table.iter().collect();
        rows.sort_by_key(|(pc, _)| pc.0);
        let rows = rows
            .into_iter()
            .map(|(pc, e)| {
                Value::Arr(vec![
                    Value::u64(u64::from(pc.0)),
                    Value::u64(u64::from(e.last_warp.0)),
                    Value::u64(e.last_addr.raw()),
                    e.candidate.map_or(Value::Null, snapshot::i64_value),
                    Value::u64(u64::from(e.confidence)),
                    Value::u64(e.stamp),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("table".into(), Value::Arr(rows)),
            ("seq".into(), Value::u64(self.seq)),
        ])
    }

    fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let bad = || SnapshotError::malformed("inter-warp table row does not decode");
        let seq = snapshot::u64_field(v, "seq")?;
        let mut table = HashMap::with_capacity(self.capacity);
        for row in snapshot::arr_field(v, "table")? {
            let Some([pc, warp, addr, candidate, confidence, stamp]) = row.as_arr() else {
                return Err(bad());
            };
            let candidate = match candidate {
                Value::Null => None,
                other => Some(other.as_i64().ok_or_else(bad)?),
            };
            table.insert(
                Pc(pc.as_u32().ok_or_else(bad)?),
                PcEntry {
                    last_warp: WarpId(warp.as_u32().ok_or_else(bad)?),
                    last_addr: Address(addr.as_u64().ok_or_else(bad)?),
                    candidate,
                    confidence: confidence
                        .as_u32()
                        .and_then(|c| u8::try_from(c).ok())
                        .ok_or_else(bad)?,
                    stamp: stamp.as_u64().ok_or_else(bad)?,
                },
            );
        }
        if table.len() > self.capacity {
            return Err(SnapshotError::malformed(
                "inter-warp checkpoint exceeds table capacity",
            ));
        }
        self.table = table;
        self.seq = seq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::{AccessOutcome, CtaId, Cycle, SmId};

    fn ev(warp: u32, pc: u32, addr: u64) -> AccessEvent {
        AccessEvent {
            sm: SmId(0),
            warp: WarpId(warp),
            cta: CtaId(0),
            pc: Pc(pc),
            addr: Address(addr),
            outcome: AccessOutcome::Miss,
            cycle: Cycle(0),
        }
    }

    fn ctx() -> PrefetchContext {
        PrefetchContext {
            cycle: Cycle(0),
            bw_utilization: 0.0,
            free_lines: 8,
            total_lines: 16,
            prefetch_overrun: false,
            telemetry: false,
        }
    }

    #[test]
    fn trains_on_three_consistent_warps() {
        let mut p = InterWarp::default();
        let mut out = Vec::new();
        for w in 0..3u32 {
            out.clear();
            p.on_demand_access(&ev(w, 1, 4096 * u64::from(w)), &ctx(), &mut out);
        }
        // Third warp trains and prefetches for warps 3 and 4.
        assert_eq!(
            out,
            vec![
                PrefetchRequest::new(Address(3 * 4096)),
                PrefetchRequest::new(Address(4 * 4096)),
            ]
        );
    }

    #[test]
    fn irregular_warp_addresses_never_train() {
        let mut p = InterWarp::default();
        let mut out = Vec::new();
        for (w, a) in [(0u32, 0u64), (1, 4096), (2, 5000), (3, 12345)] {
            p.on_demand_access(&ev(w, 1, a), &ctx(), &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn nonadjacent_warps_use_per_warp_stride() {
        let mut p = InterWarp::default();
        let mut out = Vec::new();
        // Warps 0, 2, 4: addresses w*1024; per-warp stride 1024.
        for w in [0u32, 2, 4] {
            out.clear();
            p.on_demand_access(&ev(w, 1, 1024 * u64::from(w)), &ctx(), &mut out);
        }
        assert_eq!(out[0], PrefetchRequest::new(Address(5 * 1024)));
    }

    #[test]
    fn capacity_bound_holds() {
        let mut p = InterWarp::new(4, 1, 3);
        let mut out = Vec::new();
        for pc in 0..10u32 {
            p.on_demand_access(&ev(0, pc, 0), &ctx(), &mut out);
        }
        assert!(p.table.len() <= 4);
    }
}

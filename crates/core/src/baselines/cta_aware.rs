//! CTA-aware prefetcher (Koo et al. \[25\]): learns the fixed stride
//! between the base addresses of successive CTAs for each load PC and
//! prefetches for *future CTAs*, trading detection time for
//! timeliness. The paper reports it as the most accurate prior
//! mechanism but with low coverage because inter-CTA stride detection
//! takes a while (§2, §5.1).

use std::collections::HashMap;

use snake_sim::json::Value;
use snake_sim::snapshot::{self, SnapshotError};
use snake_sim::{
    AccessEvent, Address, CtaId, KernelTrace, Pc, PrefetchContext, PrefetchRequest, Prefetcher,
};

#[derive(Debug, Clone)]
struct PcEntry {
    /// First address observed per CTA (insertion-ordered).
    cta_bases: Vec<(CtaId, Address)>,
    /// Committed inter-CTA stride.
    stride: Option<i64>,
    stamp: u64,
}

/// The CTA-aware prefetcher.
#[derive(Debug, Clone)]
pub struct CtaAware {
    table: HashMap<Pc, PcEntry>,
    capacity: usize,
    /// Future CTAs covered per trigger.
    degree: u32,
    /// Consistent CTA pairs required before committing a stride.
    confirm_pairs: usize,
    seq: u64,
}

impl CtaAware {
    /// Creates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(capacity: usize, degree: u32, confirm_pairs: usize) -> Self {
        assert!(capacity > 0 && degree > 0 && confirm_pairs > 0);
        CtaAware {
            table: HashMap::with_capacity(capacity),
            capacity,
            degree,
            confirm_pairs,
            seq: 0,
        }
    }
}

impl Default for CtaAware {
    fn default() -> Self {
        CtaAware::new(64, 1, 2)
    }
}

impl Prefetcher for CtaAware {
    fn name(&self) -> &str {
        "cta-aware"
    }

    fn on_kernel_launch(&mut self, _trace: &KernelTrace) {
        self.table.clear();
        self.seq = 0;
    }

    fn on_demand_access(
        &mut self,
        event: &AccessEvent,
        _ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.seq += 1;
        let stamp = self.seq;
        if self.table.len() >= self.capacity && !self.table.contains_key(&event.pc) {
            if let Some(&key) = self
                .table
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.table.remove(&key);
            }
        }
        let confirm_pairs = self.confirm_pairs;
        let e = self.table.entry(event.pc).or_insert(PcEntry {
            cta_bases: Vec::new(),
            stride: None,
            stamp,
        });
        e.stamp = stamp;

        // Record the first access each CTA makes through this PC.
        if !e.cta_bases.iter().any(|(c, _)| *c == event.cta) {
            e.cta_bases.push((event.cta, event.addr));
            if e.cta_bases.len() > 8 {
                e.cta_bases.remove(0);
            }
            // Derive the per-CTA stride from successive CTA bases.
            if e.cta_bases.len() > confirm_pairs {
                let mut per_cta: Option<i64> = None;
                let mut consistent = true;
                for pair in e.cta_bases.windows(2) {
                    let (c0, a0) = pair[0];
                    let (c1, a1) = pair[1];
                    let dc = i64::from(c1.0) - i64::from(c0.0);
                    if dc == 0 || a1.stride_from(a0) % dc != 0 {
                        consistent = false;
                        break;
                    }
                    let s = a1.stride_from(a0) / dc;
                    if per_cta.get_or_insert(s) != &s {
                        consistent = false;
                        break;
                    }
                }
                e.stride = if consistent { per_cta } else { None };
            }
        }

        if let Some(s) = e.stride {
            // Prefetch the corresponding access of the next CTA(s).
            // CTAs on one SM are `cta_step` apart (round-robin over
            // SMs); the learned stride is per CTA-id unit.
            for k in 1..=i64::from(self.degree) {
                out.push(PrefetchRequest::new(event.addr.offset(s * k)));
            }
        }
    }

    /// The table, serialized sorted by PC for byte-identical
    /// checkpoints regardless of `HashMap` iteration order. Per-CTA
    /// base lists keep their insertion order (it is
    /// detection-meaningful).
    fn save_state(&self) -> Value {
        let mut rows: Vec<_> = self.table.iter().collect();
        rows.sort_by_key(|(pc, _)| pc.0);
        let rows = rows
            .into_iter()
            .map(|(pc, e)| {
                let bases = e
                    .cta_bases
                    .iter()
                    .map(|(c, a)| Value::Arr(vec![Value::u64(u64::from(c.0)), Value::u64(a.raw())]))
                    .collect();
                Value::Arr(vec![
                    Value::u64(u64::from(pc.0)),
                    Value::Arr(bases),
                    e.stride.map_or(Value::Null, snapshot::i64_value),
                    Value::u64(e.stamp),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("table".into(), Value::Arr(rows)),
            ("seq".into(), Value::u64(self.seq)),
        ])
    }

    fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let bad = || SnapshotError::malformed("cta-aware table row does not decode");
        let seq = snapshot::u64_field(v, "seq")?;
        let mut table = HashMap::with_capacity(self.capacity);
        for row in snapshot::arr_field(v, "table")? {
            let Some([pc, bases, stride, stamp]) = row.as_arr() else {
                return Err(bad());
            };
            let mut cta_bases = Vec::new();
            for b in bases.as_arr().ok_or_else(bad)? {
                let Some([c, a]) = b.as_arr() else {
                    return Err(bad());
                };
                cta_bases.push((
                    CtaId(c.as_u32().ok_or_else(bad)?),
                    Address(a.as_u64().ok_or_else(bad)?),
                ));
            }
            let stride = match stride {
                Value::Null => None,
                other => Some(other.as_i64().ok_or_else(bad)?),
            };
            table.insert(
                Pc(pc.as_u32().ok_or_else(bad)?),
                PcEntry {
                    cta_bases,
                    stride,
                    stamp: stamp.as_u64().ok_or_else(bad)?,
                },
            );
        }
        if table.len() > self.capacity {
            return Err(SnapshotError::malformed(
                "cta-aware checkpoint exceeds table capacity",
            ));
        }
        self.table = table;
        self.seq = seq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::{AccessOutcome, Cycle, SmId, WarpId};

    fn ev(cta: u32, warp: u32, pc: u32, addr: u64) -> AccessEvent {
        AccessEvent {
            sm: SmId(0),
            warp: WarpId(warp),
            cta: CtaId(cta),
            pc: Pc(pc),
            addr: Address(addr),
            outcome: AccessOutcome::Miss,
            cycle: Cycle(0),
        }
    }

    fn ctx() -> PrefetchContext {
        PrefetchContext {
            cycle: Cycle(0),
            bw_utilization: 0.0,
            free_lines: 8,
            total_lines: 16,
            prefetch_overrun: false,
            telemetry: false,
        }
    }

    #[test]
    fn learns_inter_cta_stride_after_three_ctas() {
        let mut p = CtaAware::default();
        let mut out = Vec::new();
        // CTA bases 0, 64k, 128k (per-CTA stride 64k).
        for c in 0..3u32 {
            out.clear();
            p.on_demand_access(&ev(c, c * 4, 1, 65_536 * u64::from(c)), &ctx(), &mut out);
        }
        assert_eq!(out, vec![PrefetchRequest::new(Address(3 * 65_536))]);
    }

    #[test]
    fn later_warps_of_a_cta_prefetch_for_next_cta() {
        let mut p = CtaAware::default();
        let mut out = Vec::new();
        for c in 0..3u32 {
            p.on_demand_access(&ev(c, c * 4, 1, 65_536 * u64::from(c)), &ctx(), &mut out);
        }
        out.clear();
        // Another warp of CTA 2 accesses its own offset; it covers the
        // corresponding offset of CTA 3.
        p.on_demand_access(&ev(2, 9, 1, 2 * 65_536 + 512), &ctx(), &mut out);
        assert_eq!(out, vec![PrefetchRequest::new(Address(3 * 65_536 + 512))]);
    }

    #[test]
    fn irregular_cta_bases_never_commit() {
        let mut p = CtaAware::default();
        let mut out = Vec::new();
        for (c, a) in [(0u32, 0u64), (1, 65_536), (2, 200_000), (3, 300_000)] {
            p.on_demand_access(&ev(c, c, 1, a), &ctx(), &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn nonadjacent_cta_ids_supported() {
        // Round-robin over 2 SMs: one SM sees CTAs 0, 2, 4.
        let mut p = CtaAware::default();
        let mut out = Vec::new();
        for c in [0u32, 2, 4] {
            out.clear();
            p.on_demand_access(&ev(c, c, 1, 1000 * u64::from(c)), &ctx(), &mut out);
        }
        // Per-CTA-unit stride 1000; next unit for CTA 4 base = 5000.
        assert_eq!(out, vec![PrefetchRequest::new(Address(5000))]);
    }
}

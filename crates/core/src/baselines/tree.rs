//! Spatial chunk prefetcher (Ganguly et al. \[15\], adapted to the GPU
//! context as in §4: "considers 64KB chunks of the global memory and
//! prefetches them to the L1 data cache"). On demand misses it streams
//! the following lines of the surrounding chunk — aggressive, high
//! traffic, and inaccurate on irregular applications, which is exactly
//! the behaviour the paper contrasts Snake against.

use std::collections::HashMap;

use snake_sim::json::Value;
use snake_sim::snapshot::{self, SnapshotError};
use snake_sim::{
    AccessEvent, AccessOutcome, Address, KernelTrace, PrefetchContext, PrefetchRequest, Prefetcher,
};

/// The chunk-based spatial prefetcher.
#[derive(Debug, Clone)]
pub struct Tree {
    /// Chunk size in bytes (64 KiB in the paper's adaptation).
    chunk_bytes: u64,
    /// Line size used to pace sequential prefetches.
    line_bytes: u64,
    /// Lines prefetched ahead per trigger.
    degree: u32,
    /// High-water mark per chunk so the same lines are not re-requested
    /// (bounded map, FIFO replacement).
    frontier: HashMap<u64, u64>,
    order: Vec<u64>,
    capacity: usize,
}

impl Tree {
    /// Creates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not a multiple of the line size or any
    /// parameter is zero.
    pub fn new(chunk_bytes: u64, line_bytes: u64, degree: u32, capacity: usize) -> Self {
        assert!(chunk_bytes > 0 && line_bytes > 0 && degree > 0 && capacity > 0);
        assert_eq!(chunk_bytes % line_bytes, 0);
        Tree {
            chunk_bytes,
            line_bytes,
            degree,
            frontier: HashMap::with_capacity(capacity),
            order: Vec::new(),
            capacity,
        }
    }
}

impl Default for Tree {
    fn default() -> Self {
        Tree::new(64 * 1024, 128, 4, 64)
    }
}

impl Prefetcher for Tree {
    fn name(&self) -> &str {
        "tree"
    }

    fn on_kernel_launch(&mut self, _trace: &KernelTrace) {
        self.frontier.clear();
        self.order.clear();
    }

    fn on_demand_access(
        &mut self,
        event: &AccessEvent,
        _ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    ) {
        if event.outcome == AccessOutcome::Hit {
            return; // stream on misses and prefetch hits only
        }
        let chunk = event.addr.raw() / self.chunk_bytes;
        let chunk_end = (chunk + 1) * self.chunk_bytes;
        if !self.frontier.contains_key(&chunk) {
            if self.frontier.len() >= self.capacity {
                let oldest = self.order.remove(0);
                self.frontier.remove(&oldest);
            }
            self.order.push(chunk);
            self.frontier.insert(chunk, event.addr.raw());
        }
        let frontier = self.frontier.get_mut(&chunk).expect("just inserted");
        // Advance the frontier from max(current access, old frontier).
        let mut next =
            (*frontier).max(event.addr.raw()) / self.line_bytes * self.line_bytes + self.line_bytes;
        for _ in 0..self.degree {
            if next >= chunk_end {
                break;
            }
            out.push(PrefetchRequest::new(Address(next)));
            next += self.line_bytes;
        }
        *frontier = next.saturating_sub(self.line_bytes);
    }

    /// Chunks serialized in FIFO (`order`) sequence — `order` and the
    /// frontier map always hold the same keys, so one array captures
    /// both, deterministically.
    fn save_state(&self) -> Value {
        let chunks = self
            .order
            .iter()
            .map(|chunk| {
                let frontier = self.frontier.get(chunk).copied().unwrap_or(0);
                Value::Arr(vec![Value::u64(*chunk), Value::u64(frontier)])
            })
            .collect();
        Value::Obj(vec![("chunks".into(), Value::Arr(chunks))])
    }

    fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        let bad = || SnapshotError::malformed("tree chunk row does not decode");
        let mut frontier = HashMap::with_capacity(self.capacity);
        let mut order = Vec::new();
        for row in snapshot::arr_field(v, "chunks")? {
            let Some([chunk, front]) = row.as_arr() else {
                return Err(bad());
            };
            let chunk = chunk.as_u64().ok_or_else(bad)?;
            frontier.insert(chunk, front.as_u64().ok_or_else(bad)?);
            order.push(chunk);
        }
        if order.len() > self.capacity {
            return Err(SnapshotError::malformed(
                "tree checkpoint exceeds chunk capacity",
            ));
        }
        self.frontier = frontier;
        self.order = order;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::{CtaId, Cycle, Pc, SmId, WarpId};

    fn ev(addr: u64, outcome: AccessOutcome) -> AccessEvent {
        AccessEvent {
            sm: SmId(0),
            warp: WarpId(0),
            cta: CtaId(0),
            pc: Pc(0),
            addr: Address(addr),
            outcome,
            cycle: Cycle(0),
        }
    }

    fn ctx() -> PrefetchContext {
        PrefetchContext {
            cycle: Cycle(0),
            bw_utilization: 0.0,
            free_lines: 8,
            total_lines: 16,
            prefetch_overrun: false,
            telemetry: false,
        }
    }

    #[test]
    fn miss_streams_following_lines() {
        let mut p = Tree::default();
        let mut out = Vec::new();
        p.on_demand_access(&ev(0, AccessOutcome::Miss), &ctx(), &mut out);
        assert_eq!(
            out.iter().map(|r| r.addr.0).collect::<Vec<_>>(),
            vec![128, 256, 384, 512]
        );
    }

    #[test]
    fn frontier_advances_without_rerequesting() {
        let mut p = Tree::default();
        let mut out = Vec::new();
        p.on_demand_access(&ev(0, AccessOutcome::Miss), &ctx(), &mut out);
        out.clear();
        p.on_demand_access(&ev(128, AccessOutcome::Miss), &ctx(), &mut out);
        assert_eq!(
            out.iter().map(|r| r.addr.0).collect::<Vec<_>>(),
            vec![640, 768, 896, 1024],
            "continues past the old frontier"
        );
    }

    #[test]
    fn stops_at_chunk_boundary() {
        let mut p = Tree::default();
        let mut out = Vec::new();
        let near_end = 64 * 1024 - 256;
        p.on_demand_access(&ev(near_end, AccessOutcome::Miss), &ctx(), &mut out);
        assert_eq!(
            out.iter().map(|r| r.addr.0).collect::<Vec<_>>(),
            vec![64 * 1024 - 128],
            "must not cross into the next 64KB chunk"
        );
    }

    #[test]
    fn hits_do_not_trigger() {
        let mut p = Tree::default();
        let mut out = Vec::new();
        p.on_demand_access(&ev(0, AccessOutcome::Hit), &ctx(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_state_is_bounded() {
        let mut p = Tree::new(64 * 1024, 128, 1, 2);
        let mut out = Vec::new();
        for c in 0..5u64 {
            p.on_demand_access(&ev(c * 64 * 1024, AccessOutcome::Miss), &ctx(), &mut out);
        }
        assert!(p.frontier.len() <= 2);
    }
}

//! Composition helpers: `Snake+CTA` (§4, comparison point 9 — the two
//! mechanisms are orthogonal) and a placement override used to build
//! the "decoupled versions of competitors" discussed with Fig 18.

use snake_sim::json::Value;
use snake_sim::snapshot::{self, SnapshotError};
use snake_sim::{
    AccessEvent, KernelTrace, PrefetchContext, PrefetchPlacement, PrefetchRequest, Prefetcher,
};

/// Runs two prefetchers side by side, merging their requests
/// (first prefetcher's targets take priority; duplicates removed).
pub struct Combined {
    name: String,
    first: Box<dyn Prefetcher>,
    second: Box<dyn Prefetcher>,
    placement: PrefetchPlacement,
}

impl std::fmt::Debug for Combined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Combined")
            .field("name", &self.name)
            .finish()
    }
}

impl Combined {
    /// Combines two mechanisms under `name`, storing prefetches per
    /// `placement`.
    pub fn new(
        name: impl Into<String>,
        first: Box<dyn Prefetcher>,
        second: Box<dyn Prefetcher>,
        placement: PrefetchPlacement,
    ) -> Self {
        Combined {
            name: name.into(),
            first,
            second,
            placement,
        }
    }
}

impl Prefetcher for Combined {
    fn name(&self) -> &str {
        &self.name
    }

    fn placement(&self) -> PrefetchPlacement {
        self.placement
    }

    fn on_kernel_launch(&mut self, trace: &KernelTrace) {
        self.first.on_kernel_launch(trace);
        self.second.on_kernel_launch(trace);
    }

    fn on_demand_access(
        &mut self,
        event: &AccessEvent,
        ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.first.on_demand_access(event, ctx, out);
        self.second.on_demand_access(event, ctx, out);
        // Stable dedup preserving first-mechanism priority.
        let mut seen = Vec::with_capacity(out.len());
        out.retain(|r| {
            if seen.contains(&r.addr) {
                false
            } else {
                seen.push(r.addr);
                true
            }
        });
    }

    fn throttled(&self, now: snake_sim::Cycle) -> bool {
        self.first.throttled(now) || self.second.throttled(now)
    }

    fn trained(&self) -> bool {
        self.first.trained() || self.second.trained()
    }

    fn save_state(&self) -> Value {
        Value::Obj(vec![
            ("first".into(), self.first.save_state()),
            ("second".into(), self.second.save_state()),
        ])
    }

    fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.first.restore_state(snapshot::field(v, "first")?)?;
        self.second.restore_state(snapshot::field(v, "second")?)
    }
}

/// Overrides the storage placement of an inner mechanism (e.g. a
/// decoupled MTA).
pub struct WithPlacement {
    inner: Box<dyn Prefetcher>,
    placement: PrefetchPlacement,
    name: String,
}

impl std::fmt::Debug for WithPlacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WithPlacement")
            .field("name", &self.name)
            .finish()
    }
}

impl WithPlacement {
    /// Wraps `inner`, storing its prefetches per `placement`. The
    /// reported name gains a `+dec`/`+iso` suffix.
    pub fn new(inner: Box<dyn Prefetcher>, placement: PrefetchPlacement) -> Self {
        let suffix = match placement {
            PrefetchPlacement::Decoupled => "+dec",
            PrefetchPlacement::PlainL1 => "",
            PrefetchPlacement::Isolated { .. } => "+iso",
        };
        let name = format!("{}{suffix}", inner.name());
        WithPlacement {
            inner,
            placement,
            name,
        }
    }
}

impl Prefetcher for WithPlacement {
    fn name(&self) -> &str {
        &self.name
    }

    fn placement(&self) -> PrefetchPlacement {
        self.placement
    }

    fn on_kernel_launch(&mut self, trace: &KernelTrace) {
        self.inner.on_kernel_launch(trace);
    }

    fn on_demand_access(
        &mut self,
        event: &AccessEvent,
        ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.inner.on_demand_access(event, ctx, out);
    }

    fn throttled(&self, now: snake_sim::Cycle) -> bool {
        self.inner.throttled(now)
    }

    fn trained(&self) -> bool {
        self.inner.trained()
    }

    fn save_state(&self) -> Value {
        self.inner.save_state()
    }

    fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.inner.restore_state(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::cta_aware::CtaAware;
    use crate::snake::{Snake, SnakeConfig};
    use snake_sim::{AccessOutcome, Address, CtaId, Cycle, Pc, SmId, WarpId};

    fn ev(cta: u32, warp: u32, pc: u32, addr: u64) -> AccessEvent {
        AccessEvent {
            sm: SmId(0),
            warp: WarpId(warp),
            cta: CtaId(cta),
            pc: Pc(pc),
            addr: Address(addr),
            outcome: AccessOutcome::Miss,
            cycle: Cycle(0),
        }
    }

    fn ctx() -> PrefetchContext {
        PrefetchContext {
            cycle: Cycle(0),
            bw_utilization: 0.0,
            free_lines: 8,
            total_lines: 16,
            prefetch_overrun: false,
            telemetry: false,
        }
    }

    fn snake_cta() -> Combined {
        Combined::new(
            "snake+cta",
            Box::new(Snake::new(SnakeConfig::snake())),
            Box::new(CtaAware::default()),
            PrefetchPlacement::Decoupled,
        )
    }

    #[test]
    fn combined_merges_and_dedups() {
        let mut p = snake_cta();
        let mut out = Vec::new();
        // Train the CTA-aware half.
        for c in 0..3u32 {
            out.clear();
            p.on_demand_access(&ev(c, c, 1, 65_536 * u64::from(c)), &ctx(), &mut out);
        }
        assert!(
            out.iter().any(|r| r.addr == Address(3 * 65_536)),
            "CTA half contributes"
        );
        let mut addrs: Vec<_> = out.iter().map(|r| r.addr).collect();
        let n = addrs.len();
        addrs.dedup();
        assert_eq!(n, addrs.len());
    }

    #[test]
    fn combined_reports_placement_and_name() {
        let p = snake_cta();
        assert_eq!(p.name(), "snake+cta");
        assert_eq!(p.placement(), PrefetchPlacement::Decoupled);
    }

    #[test]
    fn with_placement_overrides_and_renames() {
        let p = WithPlacement::new(
            Box::new(crate::baselines::mta::Mta::default()),
            PrefetchPlacement::Decoupled,
        );
        assert_eq!(p.name(), "mta+dec");
        assert_eq!(p.placement(), PrefetchPlacement::Decoupled);
    }
}

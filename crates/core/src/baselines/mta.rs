//! Many-Thread-Aware prefetcher (Lee et al. \[29\]): the union of the
//! intra-warp and inter-warp mechanisms — the best-coverage prior work
//! the paper compares against (§2, Fig 6/11/16).

use snake_sim::json::Value;
use snake_sim::snapshot::{self, SnapshotError};
use snake_sim::{AccessEvent, KernelTrace, PrefetchContext, PrefetchRequest, Prefetcher};

use crate::baselines::inter_warp::InterWarp;
use crate::baselines::intra_warp::IntraWarp;

/// MTA = intra-warp + inter-warp.
#[derive(Debug, Clone, Default)]
pub struct Mta {
    intra: IntraWarp,
    inter: InterWarp,
}

impl Mta {
    /// Creates an MTA prefetcher from its two components.
    pub fn new(intra: IntraWarp, inter: InterWarp) -> Self {
        Mta { intra, inter }
    }
}

impl Prefetcher for Mta {
    fn name(&self) -> &str {
        "mta"
    }

    fn on_kernel_launch(&mut self, trace: &KernelTrace) {
        self.intra.on_kernel_launch(trace);
        self.inter.on_kernel_launch(trace);
    }

    fn on_demand_access(
        &mut self,
        event: &AccessEvent,
        ctx: &PrefetchContext,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.intra.on_demand_access(event, ctx, out);
        self.inter.on_demand_access(event, ctx, out);
        out.dedup_by_key(|r| r.addr);
    }

    fn save_state(&self) -> Value {
        Value::Obj(vec![
            ("intra".into(), self.intra.save_state()),
            ("inter".into(), self.inter.save_state()),
        ])
    }

    fn restore_state(&mut self, v: &Value) -> Result<(), SnapshotError> {
        self.intra.restore_state(snapshot::field(v, "intra")?)?;
        self.inter.restore_state(snapshot::field(v, "inter")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::{AccessOutcome, Address, CtaId, Cycle, Pc, SmId, WarpId};

    fn ev(warp: u32, pc: u32, addr: u64) -> AccessEvent {
        AccessEvent {
            sm: SmId(0),
            warp: WarpId(warp),
            cta: CtaId(0),
            pc: Pc(pc),
            addr: Address(addr),
            outcome: AccessOutcome::Miss,
            cycle: Cycle(0),
        }
    }

    fn ctx() -> PrefetchContext {
        PrefetchContext {
            cycle: Cycle(0),
            bw_utilization: 0.0,
            free_lines: 8,
            total_lines: 16,
            prefetch_overrun: false,
            telemetry: false,
        }
    }

    #[test]
    fn combines_both_mechanisms() {
        let mut p = Mta::default();
        let mut out = Vec::new();
        // Loop in warp 0 trains intra; warps 0..2 train inter.
        for iter in 0..3u64 {
            for w in 0..3u32 {
                out.clear();
                p.on_demand_access(
                    &ev(w, 1, 4096 * u64::from(w) + 128 * iter),
                    &ctx(),
                    &mut out,
                );
            }
        }
        // Last access (warp 2): intra target (+128) and inter targets
        // (+4096 x degree) both present.
        let addrs: Vec<u64> = out.iter().map(|r| r.addr.0).collect();
        let last = 4096 * 2 + 128 * 2;
        assert!(addrs.contains(&(last + 128)), "intra target in {addrs:?}");
        assert!(addrs.contains(&(last + 4096)), "inter target in {addrs:?}");
    }

    #[test]
    fn deduplicates_overlapping_targets() {
        let mut p = Mta::default();
        let mut out = Vec::new();
        // Equal intra and inter strides: targets coincide.
        for iter in 0..4u64 {
            for w in 0..4u32 {
                out.clear();
                p.on_demand_access(
                    &ev(w, 1, 1024 * u64::from(w) + 1024 * iter * 4),
                    &ctx(),
                    &mut out,
                );
            }
        }
        let mut addrs: Vec<u64> = out.iter().map(|r| r.addr.0).collect();
        let before = addrs.len();
        addrs.dedup();
        assert_eq!(before, addrs.len(), "duplicates must be removed");
    }
}

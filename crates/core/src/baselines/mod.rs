//! Baseline prefetchers the paper compares against (§4, comparison
//! points 1–5 and 9), plus composition helpers.

pub mod combo;
pub mod cta_aware;
pub mod inter_warp;
pub mod intra_warp;
pub mod mta;
pub mod tree;

pub use combo::{Combined, WithPlacement};
pub use cta_aware::CtaAware;
pub use inter_warp::InterWarp;
pub use intra_warp::IntraWarp;
pub use mta::Mta;
pub use tree::Tree;

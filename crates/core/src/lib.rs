//! # snake-core
//!
//! The paper's contribution: **Snake**, a variable-length
//! chain-of-strides hardware prefetcher for GPU L1 caches (MICRO '23),
//! together with every baseline it is compared against and the trace
//! analyses behind its motivation figures.
//!
//! * [`snake`] — the Snake prefetcher: Head/Tail tables, chain
//!   walking, training FSM, throttling, and the ablation variants
//!   (`s-Snake`, `Snake-DT`, `Snake-T`, `Isolated-Snake`).
//! * [`baselines`] — Intra-warp, Inter-warp, MTA, CTA-aware, and the
//!   spatial Tree prefetcher, plus composition helpers (`Snake+CTA`).
//! * [`api`] — the [`PrefetcherKind`] registry building any of the
//!   paper's comparison points by name.
//! * [`analysis`] — pure trace analyses: chain extraction and
//!   per-mechanism predictability bounds (Figs 6, 9, 10, 11).
//! * [`metrics`] — coverage/accuracy/report rows (§4 definitions).
//! * [`cost`] — the Table 3 / Fig 21 hardware cost model.
//! * [`json`] — dependency-free JSON (re-exported from `snake_sim`)
//!   used by the sweep manifests and simulator checkpoints (lossless
//!   `u64`/`f64` round-trips).
//!
//! ## Quick start
//!
//! ```
//! use snake_core::{PrefetcherKind, snake::{Snake, SnakeConfig}};
//! use snake_sim::{run_kernel, GpuConfig, Instr, KernelTrace, WarpTrace, CtaId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three warps with a repeating two-load stride chain.
//! let warps = (0..3)
//!     .map(|w| {
//!         let base = 1 << 20;
//!         let instrs = (0..32)
//!             .flat_map(|i| {
//!                 let a = base + w * 4096 + i * 512;
//!                 [Instr::load(10u32, a as u64), Instr::load(20u32, (a + 256) as u64)]
//!             })
//!             .collect();
//!         WarpTrace::new(CtaId(0), instrs)
//!     })
//!     .collect();
//! let kernel = KernelTrace::new("chain-demo", warps);
//! let out = run_kernel(GpuConfig::scaled(1), kernel, |_| {
//!     Box::new(Snake::new(SnakeConfig::snake()))
//! })?;
//! assert!(out.stats.prefetch.issued > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod api;
pub mod baselines;
pub mod cost;
pub mod metrics;
pub mod snake;

pub use api::PrefetcherKind;
pub use metrics::MechanismReport;
// The JSON module moved into `snake_sim` so the simulator's snapshot
// subsystem can use it (this crate depends on the sim, not the other
// way around); the `snake_core::json` path stays available for
// existing users such as the sweep manifests.
pub use snake_sim::json;

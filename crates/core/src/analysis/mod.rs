//! Trace analyses behind the paper's motivation figures: chain
//! extraction (Figs 8–10) and per-mechanism predictability bounds
//! versus the Ideal prefetcher (Figs 6 and 11).

pub mod chains;
pub mod coverage;

pub use chains::{analyze_chains, chain_graph_dot, ChainAnalysisConfig, ChainLink, ChainReport};
pub use coverage::{
    ideal_bound, mechanism_bound, predictability, CoverageBound, PredictabilityReport,
};

//! Potential-coverage (predictability) analysis — Figs 6 and 11.
//!
//! Replays a kernel's load stream (warps interleaved round-robin, as a
//! scheduler would) against a mechanism operating under the *Ideal
//! conditions* of §2: infinite storage and zero latency. Every
//! predicted line goes into an unbounded predicted set; an access is
//! covered when its line was predicted before it executed. This is the
//! mechanism's coverage *upper bound*, which is exactly what Figs 6
//! and 11 compare.

use std::collections::{HashMap, HashSet};

use snake_sim::{
    AccessEvent, AccessOutcome, Address, Cycle, Instr, KernelTrace, LineAddr, Pc, PrefetchContext,
    Prefetcher, SmId, WarpId,
};

use crate::api::PrefetcherKind;

/// Line size used to dedupe predictions (matches the GPU configs).
pub const LINE_BYTES: u32 = 128;

/// One load event in the interleaved replay order.
#[derive(Debug, Clone, Copy)]
struct ReplayEvent {
    warp: WarpId,
    cta: snake_sim::CtaId,
    pc: Pc,
    addr: Address,
    divergent: bool,
}

/// A warp's load stream: `(pc, base address, divergent)` per load.
type LoadSeq = Vec<(Pc, Address, bool)>;

/// Interleaves the kernel's warps round-robin, one load per turn —
/// an idealized fair scheduler.
fn replay_order(kernel: &KernelTrace) -> Vec<ReplayEvent> {
    let mut seqs: Vec<(WarpId, snake_sim::CtaId, LoadSeq)> = kernel
        .iter()
        .map(|(wid, w)| {
            let loads = w
                .instrs
                .iter()
                .filter_map(|i| match i {
                    Instr::Load { pc, addrs } => Some((*pc, addrs.base(), addrs.len() > 1)),
                    _ => None,
                })
                .collect();
            (wid, w.cta, loads)
        })
        .collect();
    let mut events = Vec::new();
    let mut cursor = vec![0usize; seqs.len()];
    loop {
        let mut progressed = false;
        for (i, (wid, cta, loads)) in seqs.iter_mut().enumerate() {
            if let Some(&(pc, addr, divergent)) = loads.get(cursor[i]) {
                cursor[i] += 1;
                progressed = true;
                events.push(ReplayEvent {
                    warp: *wid,
                    cta: *cta,
                    pc,
                    addr,
                    divergent,
                });
            }
        }
        if !progressed {
            break;
        }
    }
    events
}

/// Result of a predictability run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageBound {
    /// Demand loads whose line was predicted before execution.
    pub covered: u64,
    /// Total demand loads.
    pub total: u64,
}

impl CoverageBound {
    /// Covered fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }
}

/// Upper-bound coverage of one mechanism on one kernel (Ideal
/// conditions: infinite storage, zero latency).
pub fn mechanism_bound(kernel: &KernelTrace, kind: PrefetcherKind) -> CoverageBound {
    let mut p = kind.build(kernel.warp_count().max(1) as u32);
    bound_with(kernel, p.as_mut())
}

/// Upper-bound coverage of an arbitrary [`Prefetcher`].
pub fn bound_with(kernel: &KernelTrace, p: &mut dyn Prefetcher) -> CoverageBound {
    p.on_kernel_launch(kernel);
    let ctx = PrefetchContext {
        cycle: Cycle(0),
        bw_utilization: 0.0,
        free_lines: u32::MAX,
        total_lines: u32::MAX,
        prefetch_overrun: false,
        telemetry: false,
    };
    let mut predicted: HashSet<LineAddr> = HashSet::new();
    let mut out = Vec::new();
    let mut covered = 0u64;
    let mut total = 0u64;
    for ev in replay_order(kernel) {
        total += 1;
        let line = ev.addr.line(LINE_BYTES);
        if predicted.contains(&line) {
            covered += 1;
        }
        if ev.divergent {
            continue; // divergent warps are excluded from training (§3.4)
        }
        let event = AccessEvent {
            sm: SmId(0),
            warp: ev.warp,
            cta: ev.cta,
            pc: ev.pc,
            addr: ev.addr,
            outcome: AccessOutcome::Miss,
            cycle: Cycle(total),
        };
        out.clear();
        p.on_demand_access(&event, &ctx, &mut out);
        predicted.extend(out.iter().map(|r| r.addr.line(LINE_BYTES)));
    }
    CoverageBound { covered, total }
}

/// The Ideal prefetcher's coverage bound: supports *all* fixed and
/// variable strides with single-observation training — chains,
/// intra-warp, inter-warp and inter-CTA relations all predict after
/// their first sighting (§2's "Ideal" comparison point).
pub fn ideal_bound(kernel: &KernelTrace) -> CoverageBound {
    let mut predicted: HashSet<LineAddr> = HashSet::new();
    // Chain relations: (pc1 -> pc2) with every stride seen so far.
    let mut chain: HashMap<(Pc, Pc), HashSet<i64>> = HashMap::new();
    let mut last: HashMap<WarpId, (Pc, Address)> = HashMap::new();
    // Intra-warp: last address and stride per (warp, pc).
    let mut intra: HashMap<(WarpId, Pc), (Address, Option<i64>)> = HashMap::new();
    // Inter-warp: first (warp, addr) per pc, derived per-warp stride.
    let mut inter: HashMap<Pc, (WarpId, Address, Option<i64>)> = HashMap::new();
    // Inter-CTA: first (cta, addr) per pc, derived per-CTA stride.
    let mut cta_base: HashMap<Pc, (u32, Address, Option<i64>)> = HashMap::new();

    let mut covered = 0u64;
    let mut total = 0u64;
    for ev in replay_order(kernel) {
        total += 1;
        let line = ev.addr.line(LINE_BYTES);
        if predicted.contains(&line) {
            covered += 1;
        }
        if ev.divergent {
            last.remove(&ev.warp);
            continue;
        }

        // Chain training + prediction for this warp's next loads.
        if let Some((ppc, paddr)) = last.insert(ev.warp, (ev.pc, ev.addr)) {
            chain
                .entry((ppc, ev.pc))
                .or_default()
                .insert(ev.addr.stride_from(paddr));
        }
        for ((pc1, _), strides) in &chain {
            if *pc1 == ev.pc {
                for s in strides {
                    predicted.insert(ev.addr.offset(*s).line(LINE_BYTES));
                }
            }
        }

        // Intra-warp.
        let e = intra.entry((ev.warp, ev.pc)).or_insert((ev.addr, None));
        if e.0 != ev.addr {
            let s = ev.addr.stride_from(e.0);
            e.1 = Some(s);
            e.0 = ev.addr;
        }
        if let Some(s) = e.1 {
            predicted.insert(ev.addr.offset(s).line(LINE_BYTES));
        }

        // Inter-warp.
        let e = inter.entry(ev.pc).or_insert((ev.warp, ev.addr, None));
        if ev.warp != e.0 {
            let dw = i64::from(ev.warp.0) - i64::from(e.0 .0);
            let delta = ev.addr.stride_from(e.1);
            if delta % dw == 0 {
                e.2 = Some(delta / dw);
            }
        }
        if let Some(s) = e.2 {
            for k in 1..=4 {
                predicted.insert(ev.addr.offset(s * k).line(LINE_BYTES));
            }
        }

        // Inter-CTA.
        let e = cta_base.entry(ev.pc).or_insert((ev.cta.0, ev.addr, None));
        if ev.cta.0 != e.0 {
            let dc = i64::from(ev.cta.0) - i64::from(e.0);
            let delta = ev.addr.stride_from(e.1);
            if delta % dc == 0 {
                e.2 = Some(delta / dc);
            }
        }
        if let Some(s) = e.2 {
            predicted.insert(ev.addr.offset(s).line(LINE_BYTES));
        }
    }
    CoverageBound { covered, total }
}

/// Fig 6 / Fig 11 rows for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictabilityReport {
    /// Application name.
    pub app: String,
    /// Intra-warp bound.
    pub intra: f64,
    /// Inter-warp bound.
    pub inter: f64,
    /// MTA bound.
    pub mta: f64,
    /// CTA-aware bound.
    pub cta: f64,
    /// Chains-of-strides bound (s-Snake: Fig 11's "chains").
    pub chains: f64,
    /// Ideal bound.
    pub ideal: f64,
}

/// Runs the full predictability analysis for one kernel.
pub fn predictability(kernel: &KernelTrace) -> PredictabilityReport {
    PredictabilityReport {
        app: kernel.name().to_owned(),
        intra: mechanism_bound(kernel, PrefetcherKind::Intra).fraction(),
        inter: mechanism_bound(kernel, PrefetcherKind::Inter).fraction(),
        mta: mechanism_bound(kernel, PrefetcherKind::Mta).fraction(),
        cta: mechanism_bound(kernel, PrefetcherKind::Cta).fraction(),
        chains: mechanism_bound(kernel, PrefetcherKind::SSnake).fraction(),
        ideal: ideal_bound(kernel).fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::{CtaId, WarpTrace};

    /// Warps streaming with a fixed per-warp stride and a loop stride.
    fn regular_kernel(warps: u32, iters: u64) -> KernelTrace {
        let traces = (0..warps)
            .map(|w| {
                let mut instrs = Vec::new();
                for i in 0..iters {
                    let b = u64::from(w) * 65_536 + i * 256;
                    instrs.push(Instr::load(10u32, b));
                    instrs.push(Instr::load(20u32, b + 128));
                }
                WarpTrace::new(CtaId(w / 4), instrs)
            })
            .collect();
        KernelTrace::new("regular", traces)
    }

    fn random_kernel(warps: u32, loads: usize) -> KernelTrace {
        let traces = (0..warps)
            .map(|w| {
                // xorshift64: nonlinear in the arithmetic sense, so no
                // accidental cross-warp affine strides.
                let mut x = u64::from(w) * 0x9E37_79B9 + 0xDEAD_BEEF;
                let instrs = (0..loads)
                    .map(|i| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        Instr::load(i as u32, x % (1 << 30))
                    })
                    .collect();
                WarpTrace::new(CtaId(0), instrs)
            })
            .collect();
        KernelTrace::new("random", traces)
    }

    #[test]
    fn ideal_dominates_every_mechanism() {
        let k = regular_kernel(8, 16);
        let r = predictability(&k);
        for (name, v) in [
            ("intra", r.intra),
            ("inter", r.inter),
            ("mta", r.mta),
            ("cta", r.cta),
            ("chains", r.chains),
        ] {
            assert!(
                r.ideal >= v - 1e-9,
                "ideal ({}) must dominate {name} ({v})",
                r.ideal
            );
        }
        assert!(r.ideal > 0.8, "regular kernel is highly predictable");
    }

    #[test]
    fn chains_beat_mta_on_chain_dominated_code() {
        // Chain with non-uniform strides between PCs but no deep loop
        // regularity across PCs: iteration strides differ per PC so
        // intra coverage exists, but chains capture both links.
        let traces = (0..4u32)
            .map(|w| {
                let mut instrs = Vec::new();
                let mut b = u64::from(w) * 1_000_003; // irregular warp bases
                for _ in 0..32 {
                    instrs.push(Instr::load(1u32, b));
                    instrs.push(Instr::load(2u32, b + 400));
                    instrs.push(Instr::load(3u32, b + 41_000));
                    b += 13_184; // irregular-ish loop stride
                }
                WarpTrace::new(CtaId(0), instrs)
            })
            .collect();
        let k = KernelTrace::new("chainy", traces);
        let r = predictability(&k);
        assert!(
            r.chains > r.inter,
            "chains {} should beat inter-warp {} here",
            r.chains,
            r.inter
        );
        assert!(r.chains > 0.5);
    }

    #[test]
    fn random_traces_are_unpredictable_for_everyone() {
        let k = random_kernel(4, 64);
        let r = predictability(&k);
        assert!(r.ideal < 0.2, "ideal on random: {}", r.ideal);
        assert!(r.mta < 0.1);
        assert!(r.chains < 0.1);
    }

    #[test]
    fn coverage_bound_fraction_handles_empty() {
        let b = CoverageBound {
            covered: 0,
            total: 0,
        };
        assert_eq!(b.fraction(), 0.0);
    }

    #[test]
    fn replay_interleaves_warps() {
        let k = regular_kernel(2, 2);
        let evs = replay_order(&k);
        assert_eq!(evs.len(), 8);
        // Round-robin: first two events come from different warps.
        assert_ne!(evs[0].warp, evs[1].warp);
    }
}

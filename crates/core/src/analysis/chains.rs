//! Chain-of-strides trace analysis (Figs 8–10).
//!
//! Operates on raw kernel traces, independent of the timing simulator:
//! extracts the `(PC1, PC2, stride)` pairs of each warp's load stream,
//! decides which are *stable* (repeated within a warp or confirmed
//! across warps, mirroring Snake's 3-warp promotion rule), and reports
//! the paper's two motivation statistics — the fraction of load PCs
//! participating in chains (Fig 9) and the maximum chain repetition
//! count per warp (Fig 10).

use std::collections::HashMap;

use snake_sim::{Address, Instr, KernelTrace, Pc, WarpTrace};

/// A directed chain link between two load PCs with a concrete stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainLink {
    /// Head load PC.
    pub pc1: Pc,
    /// Next load PC.
    pub pc2: Pc,
    /// Byte stride between their addresses.
    pub stride: i64,
}

/// Extracts a warp's load stream as `(PC, base address)` pairs.
pub fn load_sequence(warp: &WarpTrace) -> Vec<(Pc, Address)> {
    warp.instrs
        .iter()
        .filter_map(|i| match i {
            Instr::Load { pc, addrs } => Some((*pc, addrs.base())),
            _ => None,
        })
        .collect()
}

/// All consecutive chain links of a warp with their occurrence counts.
pub fn link_counts(warp: &WarpTrace) -> HashMap<ChainLink, u32> {
    let seq = load_sequence(warp);
    let mut counts = HashMap::new();
    for w in seq.windows(2) {
        let (pc1, a1) = w[0];
        let (pc2, a2) = w[1];
        let link = ChainLink {
            pc1,
            pc2,
            stride: a2.stride_from(a1),
        };
        *counts.entry(link).or_insert(0) += 1;
    }
    counts
}

/// Result of the chain analysis on one kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainReport {
    /// Fraction of the representative warp's distinct load PCs that
    /// participate in at least one stable chain link (Fig 9).
    pub pc_fraction_in_chains: f64,
    /// Maximum repetition count of a stable chain link within the
    /// representative warp (Fig 10).
    pub max_repetition: u32,
    /// Number of stable links found kernel-wide.
    pub stable_links: usize,
    /// Distinct load PCs in the representative warp.
    pub representative_pcs: usize,
}

/// Parameters of stability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainAnalysisConfig {
    /// Within-warp repetitions that make a link stable.
    pub min_repeats: u32,
    /// Distinct warps observing a link that make it stable (the
    /// paper's promotion rule uses 3).
    pub min_warps: u32,
}

impl Default for ChainAnalysisConfig {
    fn default() -> Self {
        ChainAnalysisConfig {
            min_repeats: 3,
            min_warps: 3,
        }
    }
}

/// Runs the chain analysis (Figs 9 and 10).
pub fn analyze_chains(kernel: &KernelTrace, cfg: &ChainAnalysisConfig) -> ChainReport {
    // Kernel-wide: how many warps observed each link, and per-warp
    // occurrence counts.
    let mut warps_per_link: HashMap<ChainLink, u32> = HashMap::new();
    let per_warp_counts: Vec<HashMap<ChainLink, u32>> =
        kernel.warps().iter().map(link_counts).collect();
    for counts in &per_warp_counts {
        for link in counts.keys() {
            *warps_per_link.entry(*link).or_insert(0) += 1;
        }
    }

    let stable = |link: &ChainLink, counts: &HashMap<ChainLink, u32>| {
        counts.get(link).copied().unwrap_or(0) >= cfg.min_repeats
            || warps_per_link.get(link).copied().unwrap_or(0) >= cfg.min_warps
    };

    let (rep_id, rep) = kernel.representative_warp();
    let rep_counts = &per_warp_counts[rep_id.index()];
    let mut rep_pcs: Vec<Pc> = load_sequence(rep).iter().map(|(pc, _)| *pc).collect();
    rep_pcs.sort_unstable();
    rep_pcs.dedup();

    let pcs_in_chains = rep_pcs
        .iter()
        .filter(|pc| {
            rep_counts
                .keys()
                .any(|l| (l.pc1 == **pc || l.pc2 == **pc) && stable(l, rep_counts))
        })
        .count();

    let max_repetition = rep_counts
        .iter()
        .filter(|(l, _)| stable(l, rep_counts))
        .map(|(_, c)| *c)
        .max()
        .unwrap_or(0);

    let stable_links = warps_per_link
        .keys()
        .filter(|l| per_warp_counts.iter().any(|c| stable(l, c)))
        .count();

    ChainReport {
        pc_fraction_in_chains: if rep_pcs.is_empty() {
            0.0
        } else {
            pcs_in_chains as f64 / rep_pcs.len() as f64
        },
        max_repetition,
        stable_links,
        representative_pcs: rep_pcs.len(),
    }
}

/// Renders the kernel's stable chain links as a Graphviz DOT digraph —
/// the paper's Fig 8 ("a graph representation of the founded chain
/// between PC_lds").
///
/// Nodes are load PCs; each edge is a stable `(PC1 → PC2)` link
/// labelled with its stride and kernel-wide repetition count.
///
/// # Examples
///
/// ```
/// use snake_core::analysis::{chain_graph_dot, ChainAnalysisConfig};
/// use snake_sim::{CtaId, Instr, KernelTrace, WarpTrace};
///
/// let warp = WarpTrace::new(CtaId(0), (0..8).flat_map(|i| {
///     let b = i * 4096;
///     [Instr::load(1u32, b), Instr::load(2u32, b + 400)]
/// }).collect());
/// let k = KernelTrace::new("demo", vec![warp]);
/// let dot = chain_graph_dot(&k, &ChainAnalysisConfig::default());
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("+400"));
/// ```
pub fn chain_graph_dot(kernel: &KernelTrace, cfg: &ChainAnalysisConfig) -> String {
    // Count within-warp occurrences and observing warps per link.
    let per_warp: Vec<HashMap<ChainLink, u32>> = kernel.warps().iter().map(link_counts).collect();
    let mut total: HashMap<ChainLink, (u32, u32)> = HashMap::new(); // (occurrences, warps)
    for counts in &per_warp {
        for (link, n) in counts {
            let e = total.entry(*link).or_insert((0, 0));
            e.0 += n;
            e.1 += 1;
        }
    }
    let mut stable: Vec<(&ChainLink, &(u32, u32))> = total
        .iter()
        .filter(|(l, (_, warps))| {
            *warps >= cfg.min_warps
                || per_warp
                    .iter()
                    .any(|c| c.get(l).copied().unwrap_or(0) >= cfg.min_repeats)
        })
        .collect();
    stable.sort_by_key(|(l, _)| **l);

    let mut dot = String::from(
        "digraph chains {
  rankdir=LR;
  node [shape=box];
",
    );
    let mut pcs: Vec<Pc> = stable.iter().flat_map(|(l, _)| [l.pc1, l.pc2]).collect();
    pcs.sort_unstable();
    pcs.dedup();
    for pc in pcs {
        dot.push_str(&format!("  pc{0} [label=\"PC {0}\"];\n", pc.0));
    }
    for (l, (occ, warps)) in stable {
        dot.push_str(&format!(
            "  pc{} -> pc{} [label=\"{}{} (x{}, {}w)\"];\n",
            l.pc1.0,
            l.pc2.0,
            if l.stride >= 0 { "+" } else { "" },
            l.stride,
            occ,
            warps
        ));
    }
    dot.push_str("}\n");
    dot
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::CtaId;

    /// A warp looping over the LPS-like chain pc10 -> pc20 -> pc30.
    fn chain_warp(iters: u64, base: u64) -> WarpTrace {
        let mut instrs = Vec::new();
        for i in 0..iters {
            let b = base + i * 4096;
            instrs.push(Instr::load(10u32, b));
            instrs.push(Instr::load(20u32, b + 400));
            instrs.push(Instr::load(30u32, b + 1000));
        }
        WarpTrace::new(CtaId(0), instrs)
    }

    fn random_warp(n: usize, seed: u64) -> WarpTrace {
        // Deterministic xorshift addresses — no stable strides.
        let mut x = seed | 1;
        let instrs = (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                Instr::load(i as u32, x % (1 << 30))
            })
            .collect();
        WarpTrace::new(CtaId(0), instrs)
    }

    #[test]
    fn loop_chain_has_full_pc_coverage() {
        let k = KernelTrace::new("lps-ish", vec![chain_warp(10, 0)]);
        let r = analyze_chains(&k, &ChainAnalysisConfig::default());
        assert_eq!(r.representative_pcs, 3);
        assert!((r.pc_fraction_in_chains - 1.0).abs() < 1e-12);
        // Each intra-iteration link repeats 10x; wraparound link 9x.
        assert_eq!(r.max_repetition, 10);
    }

    #[test]
    fn random_trace_has_no_stable_chains() {
        let k = KernelTrace::new("mum-ish", vec![random_warp(64, 7)]);
        let r = analyze_chains(&k, &ChainAnalysisConfig::default());
        assert_eq!(r.max_repetition, 0);
        assert_eq!(r.pc_fraction_in_chains, 0.0);
    }

    #[test]
    fn cross_warp_confirmation_stabilizes_single_occurrence_links() {
        // Each warp runs the chain once: no within-warp repetition,
        // but three warps share the same links.
        let warps = (0..3).map(|w| chain_warp(1, w * 100_000)).collect();
        let k = KernelTrace::new("k", warps);
        let r = analyze_chains(&k, &ChainAnalysisConfig::default());
        assert!(r.pc_fraction_in_chains > 0.99);
        assert_eq!(r.max_repetition, 1);
    }

    #[test]
    fn link_counts_capture_strides() {
        let counts = link_counts(&chain_warp(2, 0));
        assert_eq!(
            counts
                .get(&ChainLink {
                    pc1: Pc(10),
                    pc2: Pc(20),
                    stride: 400
                })
                .copied(),
            Some(2)
        );
        assert_eq!(
            counts
                .get(&ChainLink {
                    pc1: Pc(30),
                    pc2: Pc(10),
                    stride: 4096 - 1000
                })
                .copied(),
            Some(1)
        );
    }

    #[test]
    fn load_sequence_skips_non_loads() {
        let w = WarpTrace::new(
            CtaId(0),
            vec![
                Instr::compute(3),
                Instr::load(1u32, 128u64),
                Instr::store(2u32, 256u64),
                Instr::load(3u32, 512u64),
            ],
        );
        let seq = load_sequence(&w);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0], (Pc(1), Address(128)));
    }
}

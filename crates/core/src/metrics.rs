//! Evaluation metrics (§4 "Comparison Metrics") and the per-run report
//! row used by the figure harness.

use crate::json::{self, Value};
use snake_sim::{EnergyModel, GpuConfig, SimOutcome, SimStats};

/// One mechanism's results on one application — the columns of
/// Figs 16–19 and 25.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MechanismReport {
    /// Mechanism name.
    pub mechanism: String,
    /// Application name.
    pub app: String,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Coverage: correctly predicted demand addresses / all demand
    /// addresses (Fig 16).
    pub coverage: f64,
    /// Accuracy: *timely* correctly predicted / all demand addresses
    /// (Fig 17).
    pub accuracy: f64,
    /// Precision: useful prefetches / issued prefetches.
    pub precision: f64,
    /// L1 hit rate (Fig 25).
    pub l1_hit_rate: f64,
    /// Reservation-fail share of L1 accesses (Fig 3).
    pub reservation_fail_rate: f64,
    /// Interconnect utilization (Fig 4).
    pub noc_utilization: f64,
    /// Memory-stall share of all-stall cycles (Fig 5).
    pub memory_stall_fraction: f64,
    /// Total energy in joules (Fig 19).
    pub energy_j: f64,
    /// Total cycles.
    pub cycles: u64,
    /// Median fill→first-use latency in cycles — the timeliness of the
    /// prefetches that did get used (0 when none were).
    pub timeliness_p50: u64,
    /// 90th-percentile fill→first-use latency: the tail of "fetched
    /// far too early" lines still occupying SRAM.
    pub timeliness_p90: u64,
    /// Prefetched lines that were evicted without ever being used.
    pub evicted_unused: u64,
    /// Issue-slot taxonomy: fraction of scheduler-cycles that issued.
    pub stall_issued: f64,
    /// Fraction with no runnable warp in the scheduler's partition.
    pub stall_no_warp: f64,
    /// Fraction absorbing memory-use latency (L1 hit/store settle).
    pub stall_barrier: f64,
    /// Fraction stalled on a non-memory data dependency.
    pub stall_scoreboard: f64,
    /// Fraction stalled waiting on outstanding loads (stall-on-use).
    pub stall_mem_data: f64,
    /// Fraction rejected by a full MSHR (or no evictable way).
    pub stall_mem_mshr: f64,
    /// Fraction rejected by a full miss queue without NoC backpressure.
    pub stall_mem_missq: f64,
    /// Fraction rejected by a full miss queue under NoC backpressure.
    pub stall_mem_noc: f64,
}

impl MechanismReport {
    /// Builds a report row from a finished run.
    pub fn from_outcome(
        mechanism: impl Into<String>,
        app: impl Into<String>,
        outcome: &SimOutcome,
        cfg: &GpuConfig,
        energy: &EnergyModel,
        has_prefetcher: bool,
    ) -> Self {
        let s = &outcome.stats;
        MechanismReport {
            mechanism: mechanism.into(),
            app: app.into(),
            ipc: s.ipc(),
            coverage: s.coverage(),
            accuracy: s.timely_coverage(),
            precision: s.prefetch.precision(),
            l1_hit_rate: s.l1.hit_rate(),
            reservation_fail_rate: s.l1.reservation_fail_rate(),
            noc_utilization: s.noc_utilization(u64::from(cfg.noc_bytes_per_cycle)),
            memory_stall_fraction: s.memory_stall_fraction(),
            energy_j: energy.evaluate(s, cfg, has_prefetcher).total_j(),
            cycles: s.cycles,
            timeliness_p50: outcome.lifecycle.fill_to_first_use.p50(),
            timeliness_p90: outcome.lifecycle.fill_to_first_use.p90(),
            evicted_unused: s.prefetch.evicted_unused,
            stall_issued: s.stall.fraction(s.stall.issued),
            stall_no_warp: s.stall.fraction(s.stall.no_warp),
            stall_barrier: s.stall.fraction(s.stall.barrier),
            stall_scoreboard: s.stall.fraction(s.stall.scoreboard),
            stall_mem_data: s.stall.fraction(s.stall.mem_data),
            stall_mem_mshr: s.stall.fraction(s.stall.mem_struct_mshr),
            stall_mem_missq: s.stall.fraction(s.stall.mem_struct_missq),
            stall_mem_noc: s.stall.fraction(s.stall.mem_struct_noc),
        }
    }

    /// Serializes this row as a compact JSON object. Floats use
    /// shortest round-trip formatting, so
    /// `from_json(&to_json().to_string())` reproduces the row
    /// bit-exactly — the property the sweep manifest's byte-identical
    /// resume guarantee relies on.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("mechanism".into(), Value::str(&self.mechanism)),
            ("app".into(), Value::str(&self.app)),
            ("ipc".into(), Value::f64(self.ipc)),
            ("coverage".into(), Value::f64(self.coverage)),
            ("accuracy".into(), Value::f64(self.accuracy)),
            ("precision".into(), Value::f64(self.precision)),
            ("l1_hit_rate".into(), Value::f64(self.l1_hit_rate)),
            (
                "reservation_fail_rate".into(),
                Value::f64(self.reservation_fail_rate),
            ),
            ("noc_utilization".into(), Value::f64(self.noc_utilization)),
            (
                "memory_stall_fraction".into(),
                Value::f64(self.memory_stall_fraction),
            ),
            ("energy_j".into(), Value::f64(self.energy_j)),
            ("cycles".into(), Value::u64(self.cycles)),
            ("timeliness_p50".into(), Value::u64(self.timeliness_p50)),
            ("timeliness_p90".into(), Value::u64(self.timeliness_p90)),
            ("evicted_unused".into(), Value::u64(self.evicted_unused)),
            ("stall_issued".into(), Value::f64(self.stall_issued)),
            ("stall_no_warp".into(), Value::f64(self.stall_no_warp)),
            ("stall_barrier".into(), Value::f64(self.stall_barrier)),
            ("stall_scoreboard".into(), Value::f64(self.stall_scoreboard)),
            ("stall_mem_data".into(), Value::f64(self.stall_mem_data)),
            ("stall_mem_mshr".into(), Value::f64(self.stall_mem_mshr)),
            ("stall_mem_missq".into(), Value::f64(self.stall_mem_missq)),
            ("stall_mem_noc".into(), Value::f64(self.stall_mem_noc)),
        ])
    }

    /// Rebuilds a row from the object produced by [`to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    ///
    /// [`to_json`]: MechanismReport::to_json
    pub fn from_json(v: &Value) -> Result<Self, String> {
        fn str_field(v: &Value, key: &str) -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        }
        fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
        }
        fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        }
        Ok(MechanismReport {
            mechanism: str_field(v, "mechanism")?,
            app: str_field(v, "app")?,
            ipc: f64_field(v, "ipc")?,
            coverage: f64_field(v, "coverage")?,
            accuracy: f64_field(v, "accuracy")?,
            precision: f64_field(v, "precision")?,
            l1_hit_rate: f64_field(v, "l1_hit_rate")?,
            reservation_fail_rate: f64_field(v, "reservation_fail_rate")?,
            noc_utilization: f64_field(v, "noc_utilization")?,
            memory_stall_fraction: f64_field(v, "memory_stall_fraction")?,
            energy_j: f64_field(v, "energy_j")?,
            cycles: u64_field(v, "cycles")?,
            timeliness_p50: u64_field(v, "timeliness_p50")?,
            timeliness_p90: u64_field(v, "timeliness_p90")?,
            evicted_unused: u64_field(v, "evicted_unused")?,
            stall_issued: f64_field(v, "stall_issued")?,
            stall_no_warp: f64_field(v, "stall_no_warp")?,
            stall_barrier: f64_field(v, "stall_barrier")?,
            stall_scoreboard: f64_field(v, "stall_scoreboard")?,
            stall_mem_data: f64_field(v, "stall_mem_data")?,
            stall_mem_mshr: f64_field(v, "stall_mem_mshr")?,
            stall_mem_missq: f64_field(v, "stall_mem_missq")?,
            stall_mem_noc: f64_field(v, "stall_mem_noc")?,
        })
    }

    /// Parses a row straight from JSON text (see [`from_json`]).
    ///
    /// # Errors
    ///
    /// Returns the parse or field error as a string.
    ///
    /// [`from_json`]: MechanismReport::from_json
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }

    /// Speedup of this run over a baseline run (Fig 18's y-axis).
    pub fn speedup_over(&self, baseline: &MechanismReport) -> f64 {
        if self.ipc == 0.0 || baseline.ipc == 0.0 {
            return 1.0;
        }
        self.ipc / baseline.ipc
    }

    /// Energy normalized to a baseline run (Fig 19's y-axis).
    pub fn energy_vs(&self, baseline: &MechanismReport) -> f64 {
        if baseline.energy_j == 0.0 {
            return 1.0;
        }
        self.energy_j / baseline.energy_j
    }
}

/// Geometric mean of positive values (the standard summary for
/// speedups across applications). Returns 1.0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Convenience: coverage/accuracy straight from raw stats (used by
/// tests and the analysis module).
pub fn coverage_of(stats: &SimStats) -> f64 {
    stats.coverage()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::StopReason;

    fn outcome(ipc_instr: u64, cycles: u64) -> SimOutcome {
        SimOutcome {
            stats: SimStats {
                cycles,
                instructions: ipc_instr,
                demand_loads: 100,
                ..Default::default()
            },
            stop: StopReason::Completed,
            lifecycle: Default::default(),
            series: None,
            host: None,
        }
    }

    #[test]
    fn speedup_and_energy_ratios() {
        let cfg = GpuConfig::scaled(1);
        let em = EnergyModel::volta_like();
        let base = MechanismReport::from_outcome(
            "baseline",
            "app",
            &outcome(1000, 1000),
            &cfg,
            &em,
            false,
        );
        let fast =
            MechanismReport::from_outcome("snake", "app", &outcome(1000, 800), &cfg, &em, true);
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-9);
        assert!(fast.energy_vs(&base) < 1.0, "shorter run, less energy");
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn report_json_round_trip_is_bit_exact() {
        let cfg = GpuConfig::scaled(1);
        let em = EnergyModel::volta_like();
        let mut row =
            MechanismReport::from_outcome("snake", "lps", &outcome(12345, 6789), &cfg, &em, true);
        row.ipc = 1.0 / 3.0; // force a non-terminating decimal
        row.cycles = u64::MAX - 7; // beyond f64 precision
        row.stall_mem_mshr = 2.0 / 7.0; // breakdown columns too
        let text = row.to_json().to_string();
        let back = MechanismReport::from_json_str(&text).unwrap();
        assert_eq!(back, row);
        // Byte-identical re-serialization, the manifest invariant.
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn report_json_rejects_missing_fields() {
        let err = MechanismReport::from_json_str(r#"{"mechanism":"m","app":"a"}"#).unwrap_err();
        assert!(err.contains("ipc"), "{err}");
        assert!(MechanismReport::from_json_str("[1,2]").is_err());
        assert!(MechanismReport::from_json_str("not json").is_err());
    }

    #[test]
    fn zero_ipc_degrades_gracefully() {
        let cfg = GpuConfig::scaled(1);
        let em = EnergyModel::volta_like();
        let a = MechanismReport::from_outcome("a", "app", &outcome(0, 1000), &cfg, &em, false);
        let b = MechanismReport::from_outcome("b", "app", &outcome(10, 1000), &cfg, &em, false);
        assert_eq!(b.speedup_over(&a), 1.0);
    }
}

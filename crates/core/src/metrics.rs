//! Evaluation metrics (§4 "Comparison Metrics") and the per-run report
//! row used by the figure harness.

use snake_sim::{EnergyModel, GpuConfig, SimOutcome, SimStats};

/// One mechanism's results on one application — the columns of
/// Figs 16–19 and 25.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismReport {
    /// Mechanism name.
    pub mechanism: String,
    /// Application name.
    pub app: String,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Coverage: correctly predicted demand addresses / all demand
    /// addresses (Fig 16).
    pub coverage: f64,
    /// Accuracy: *timely* correctly predicted / all demand addresses
    /// (Fig 17).
    pub accuracy: f64,
    /// Precision: useful prefetches / issued prefetches.
    pub precision: f64,
    /// L1 hit rate (Fig 25).
    pub l1_hit_rate: f64,
    /// Reservation-fail share of L1 accesses (Fig 3).
    pub reservation_fail_rate: f64,
    /// Interconnect utilization (Fig 4).
    pub noc_utilization: f64,
    /// Memory-stall share of all-stall cycles (Fig 5).
    pub memory_stall_fraction: f64,
    /// Total energy in joules (Fig 19).
    pub energy_j: f64,
    /// Total cycles.
    pub cycles: u64,
    /// Median fill→first-use latency in cycles — the timeliness of the
    /// prefetches that did get used (0 when none were).
    pub timeliness_p50: u64,
    /// 90th-percentile fill→first-use latency: the tail of "fetched
    /// far too early" lines still occupying SRAM.
    pub timeliness_p90: u64,
    /// Prefetched lines that were evicted without ever being used.
    pub evicted_unused: u64,
}

impl MechanismReport {
    /// Builds a report row from a finished run.
    pub fn from_outcome(
        mechanism: impl Into<String>,
        app: impl Into<String>,
        outcome: &SimOutcome,
        cfg: &GpuConfig,
        energy: &EnergyModel,
        has_prefetcher: bool,
    ) -> Self {
        let s = &outcome.stats;
        MechanismReport {
            mechanism: mechanism.into(),
            app: app.into(),
            ipc: s.ipc(),
            coverage: s.coverage(),
            accuracy: s.timely_coverage(),
            precision: s.prefetch.precision(),
            l1_hit_rate: s.l1.hit_rate(),
            reservation_fail_rate: s.l1.reservation_fail_rate(),
            noc_utilization: s.noc_utilization(u64::from(cfg.noc_bytes_per_cycle)),
            memory_stall_fraction: s.memory_stall_fraction(),
            energy_j: energy.evaluate(s, cfg, has_prefetcher).total_j(),
            cycles: s.cycles,
            timeliness_p50: outcome.lifecycle.fill_to_first_use.p50(),
            timeliness_p90: outcome.lifecycle.fill_to_first_use.p90(),
            evicted_unused: s.prefetch.evicted_unused,
        }
    }

    /// Speedup of this run over a baseline run (Fig 18's y-axis).
    pub fn speedup_over(&self, baseline: &MechanismReport) -> f64 {
        if self.ipc == 0.0 || baseline.ipc == 0.0 {
            return 1.0;
        }
        self.ipc / baseline.ipc
    }

    /// Energy normalized to a baseline run (Fig 19's y-axis).
    pub fn energy_vs(&self, baseline: &MechanismReport) -> f64 {
        if baseline.energy_j == 0.0 {
            return 1.0;
        }
        self.energy_j / baseline.energy_j
    }
}

/// Geometric mean of positive values (the standard summary for
/// speedups across applications). Returns 1.0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Convenience: coverage/accuracy straight from raw stats (used by
/// tests and the analysis module).
pub fn coverage_of(stats: &SimStats) -> f64 {
    stats.coverage()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snake_sim::StopReason;

    fn outcome(ipc_instr: u64, cycles: u64) -> SimOutcome {
        SimOutcome {
            stats: SimStats {
                cycles,
                instructions: ipc_instr,
                demand_loads: 100,
                ..Default::default()
            },
            stop: StopReason::Completed,
            lifecycle: Default::default(),
            series: None,
        }
    }

    #[test]
    fn speedup_and_energy_ratios() {
        let cfg = GpuConfig::scaled(1);
        let em = EnergyModel::volta_like();
        let base = MechanismReport::from_outcome(
            "baseline",
            "app",
            &outcome(1000, 1000),
            &cfg,
            &em,
            false,
        );
        let fast =
            MechanismReport::from_outcome("snake", "app", &outcome(1000, 800), &cfg, &em, true);
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-9);
        assert!(fast.energy_vs(&base) < 1.0, "shorter run, less energy");
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 1.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn zero_ipc_degrades_gracefully() {
        let cfg = GpuConfig::scaled(1);
        let em = EnergyModel::volta_like();
        let a = MechanismReport::from_outcome("a", "app", &outcome(0, 1000), &cfg, &em, false);
        let b = MechanismReport::from_outcome("b", "app", &outcome(10, 1000), &cfg, &em, false);
        assert_eq!(b.speedup_over(&a), 1.0);
    }
}

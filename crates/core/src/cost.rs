//! Hardware cost model (Table 3, Figs 20/21): byte-level sizes of the
//! Head and Tail tables.
//!
//! Field widths follow §3.1/§5.5: a Head row packs one load PC with two
//! `(warp id, base address)` pairs (the doubling that survives greedy
//! schedulers); a Tail entry packs two PCs, three strides, two 2-bit
//! train fields, and the warp-id bit vector.

/// Field widths in bits used by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldWidths {
    /// Load PC width (instruction offsets are compact).
    pub pc_bits: u32,
    /// Warp id width.
    pub warp_id_bits: u32,
    /// Base-address width (virtual address bits tracked).
    pub addr_bits: u32,
    /// Stride width.
    pub stride_bits: u32,
    /// Train-status width (2 bits in the paper).
    pub train_bits: u32,
    /// Warp-id vector width (one bit per resident warp).
    pub warp_vec_bits: u32,
}

impl Default for FieldWidths {
    /// Widths calibrated to reproduce Table 3 exactly:
    /// Head 14 B/entry × 32 entries = 448 B; Tail 32 B/entry × 10
    /// entries = 320 B.
    fn default() -> Self {
        FieldWidths {
            pc_bits: 32,
            warp_id_bits: 6, // 64 warps per SM
            addr_bits: 34,   // 16 GiB device memory
            stride_bits: 40, // signed strides spanning the heap
            train_bits: 2,
            warp_vec_bits: 64, // one bit per resident warp
        }
    }
}

/// Cost summary of one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableCost {
    /// Bits per entry (packed).
    pub bits_per_entry: u32,
    /// Entries.
    pub entries: u32,
    /// Total bytes (entry bits rounded up to whole bytes, as Table 3
    /// reports per-entry byte counts).
    pub total_bytes: u32,
}

impl TableCost {
    /// Bytes per entry (rounded up).
    pub fn bytes_per_entry(&self) -> u32 {
        self.bits_per_entry.div_ceil(8)
    }
}

/// The Head table cost: `entries` rows of one PC plus two
/// `(warp id, base address)` pairs (§5.5, greedy-scheduler layout).
pub fn head_table_cost(w: &FieldWidths, entries: u32) -> TableCost {
    let bits = w.pc_bits + 2 * (w.warp_id_bits + w.addr_bits);
    let per_entry_bytes = bits.div_ceil(8);
    TableCost {
        bits_per_entry: bits,
        entries,
        total_bytes: per_entry_bytes * entries,
    }
}

/// The Tail table cost: the eight fields of §3.1 per entry.
pub fn tail_table_cost(w: &FieldWidths, entries: u32) -> TableCost {
    let bits = 2 * w.pc_bits            // PC1, PC2
        + w.stride_bits                  // inter-thread stride
        + w.train_bits                   // T1
        + w.warp_vec_bits                // warp-id vector
        + w.stride_bits + w.train_bits   // intra-warp stride + T2
        + w.stride_bits; // inter-warp stride
    let per_entry_bytes = bits.div_ceil(8);
    TableCost {
        bits_per_entry: bits,
        entries,
        total_bytes: per_entry_bytes * entries,
    }
}

/// Total Snake storage per SM in bytes for a given Tail capacity —
/// the Fig 21 sweep.
pub fn snake_storage_bytes(w: &FieldWidths, head_entries: u32, tail_entries: u32) -> u32 {
    head_table_cost(w, head_entries).total_bytes + tail_table_cost(w, tail_entries).total_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_matches_table3() {
        // Table 3: 14 bytes per entry, 32 entries, 448 bytes total.
        let c = head_table_cost(&FieldWidths::default(), 32);
        assert_eq!(c.bytes_per_entry(), 14);
        assert_eq!(c.total_bytes, 448);
    }

    #[test]
    fn tail_matches_table3() {
        // Table 3: 32 bytes per entry, 10 entries, 320 bytes total.
        let c = tail_table_cost(&FieldWidths::default(), 10);
        assert_eq!(c.bytes_per_entry(), 32);
        assert_eq!(c.total_bytes, 320);
    }

    #[test]
    fn storage_scales_linearly_with_entries() {
        let w = FieldWidths::default();
        let s10 = snake_storage_bytes(&w, 32, 10);
        let s20 = snake_storage_bytes(&w, 32, 20);
        assert_eq!(s20 - s10, tail_table_cost(&w, 10).total_bytes);
        assert_eq!(s10, 448 + 320);
    }

    #[test]
    fn overhead_is_tiny_versus_unified_cache() {
        // 768 B of tables vs a 128 KiB unified SRAM: well under 1%.
        let s = snake_storage_bytes(&FieldWidths::default(), 32, 10);
        assert!((s as f64) / (128.0 * 1024.0) < 0.01);
    }
}

//! Property-based tests for Snake's Head and Tail tables: capacity
//! bounds, training monotonicity, warp-vector consistency, and
//! generation bounds under arbitrary transition streams.

use proptest::prelude::*;
use snake_core::snake::head_table::HeadTable;
use snake_core::snake::tail_table::{EvictionPolicy, TailTable, TailTableConfig};
use snake_core::snake::{Snake, SnakeConfig};
use snake_sim::{
    AccessEvent, AccessOutcome, Address, CtaId, Cycle, Pc, PrefetchContext, Prefetcher, SmId,
    WarpId,
};

#[derive(Debug, Clone, Copy)]
struct Load {
    warp: u32,
    pc: u32,
    addr: u64,
}

fn load() -> impl Strategy<Value = Load> {
    (0u32..8, 0u32..6, 0u64..1 << 16).prop_map(|(warp, pc, addr)| Load {
        warp,
        pc: pc * 10,
        addr: (addr / 64) * 64,
    })
}

fn feed(table: &mut TailTable, head: &mut HeadTable, loads: &[Load]) {
    for l in loads {
        if let Some(t) = head.update(WarpId(l.warp), Pc(l.pc), Address(l.addr)) {
            table.observe(&t);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn tail_table_capacity_and_vector_invariants(
        loads in prop::collection::vec(load(), 1..300),
        entries in 1usize..12,
        popcount_only in any::<bool>(),
    ) {
        let cfg = TailTableConfig {
            entries,
            eviction: if popcount_only {
                EvictionPolicy::PopcountOnly
            } else {
                EvictionPolicy::LruThenPopcount
            },
            ..Default::default()
        };
        let mut table = TailTable::new(cfg);
        let mut head = HeadTable::new(8);
        feed(&mut table, &mut head, &loads);

        prop_assert!(table.entries().len() <= entries);
        for e in table.entries() {
            // No duplicate (pc1, pc2, stride) triples.
            let dups = table
                .entries()
                .iter()
                .filter(|o| o.pc1 == e.pc1 && o.pc2 == e.pc2
                    && o.inter_thread_stride == e.inter_thread_stride)
                .count();
            prop_assert_eq!(dups, 1, "duplicate chain entries");
            // A prefetchable entry must have been confirmed by three
            // warps or by in-warp repetition.
            if e.t1.can_prefetch() {
                prop_assert!(e.popcount() >= 1);
            }
        }
        if table.entries().iter().any(|e| e.t1.can_prefetch() || e.t2.can_prefetch())
        {
            prop_assert!(table.any_trained());
        }
    }

    #[test]
    fn generation_is_bounded_and_line_sane(
        loads in prop::collection::vec(load(), 1..300),
        depth in 0usize..20,
        degree in 0u32..4,
    ) {
        let mut table = TailTable::new(TailTableConfig::default());
        let mut head = HeadTable::new(8);
        feed(&mut table, &mut head, &loads);
        let mut out = Vec::new();
        table.generate(WarpId(0), Pc(0), Address(1 << 20), depth, degree, true, &mut out);
        // At most depth chain targets + 1 intra + degree inter-warp.
        prop_assert!(out.len() <= depth + 1 + degree as usize);
        // Targets are deduplicated within the chain walk and never the
        // trigger address itself.
        for t in &out[..out.len().min(depth)] {
            prop_assert_ne!(*t, Address(1 << 20));
        }
    }

    #[test]
    fn head_table_emits_transitions_consistent_with_input(
        loads in prop::collection::vec(load(), 2..100),
    ) {
        let mut head = HeadTable::new(8);
        let mut last: std::collections::HashMap<u32, (u32, u64)> = Default::default();
        for l in &loads {
            let t = head.update(WarpId(l.warp), Pc(l.pc), Address(l.addr));
            match last.insert(l.warp, (l.pc, l.addr)) {
                None => prop_assert!(t.is_none()),
                Some((ppc, paddr)) => {
                    let t = t.expect("transition after first load");
                    prop_assert_eq!(t.prev_pc, Pc(ppc));
                    prop_assert_eq!(t.prev_addr, Address(paddr));
                    prop_assert_eq!(t.cur_pc, Pc(l.pc));
                    prop_assert_eq!(t.stride(), l.addr as i64 - paddr as i64);
                }
            }
        }
    }

    #[test]
    fn snake_never_panics_and_respects_throttle(
        loads in prop::collection::vec(load(), 1..200),
        free in 0u32..64,
        bw in 0.0f64..1.0,
    ) {
        let mut snake = Snake::new(SnakeConfig {
            head_warps: 8,
            ..SnakeConfig::snake()
        });
        let mut out = Vec::new();
        for (i, l) in loads.iter().enumerate() {
            let ctx = PrefetchContext {
                cycle: Cycle(i as u64),
                bw_utilization: bw,
                free_lines: free,
                total_lines: 64,
                prefetch_overrun: free == 0,
                telemetry: false,
            };
            out.clear();
            snake.on_demand_access(
                &AccessEvent {
                    sm: SmId(0),
                    warp: WarpId(l.warp),
                    cta: CtaId(l.warp / 4),
                    pc: Pc(l.pc),
                    addr: Address(l.addr),
                    outcome: AccessOutcome::Miss,
                    cycle: Cycle(i as u64),
                },
                &ctx,
                &mut out,
            );
            if snake.throttled(Cycle(i as u64)) {
                prop_assert!(out.is_empty(), "throttled Snake must not issue");
            }
        }
    }
}

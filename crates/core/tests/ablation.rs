//! Regression tests for the ablation relationships the reproduction
//! relies on: the decoupling/throttling benefit on cache-sensitive
//! workloads, and the §5.5/§1 extension claims.

use snake_core::snake::head_table::HeadLayout;
use snake_core::snake::{Snake, SnakeConfig};
use snake_core::PrefetcherKind;
use snake_sim::{run_kernel, GpuConfig, Prefetcher, SimOutcome};
use snake_workloads::{Benchmark, WorkloadSize};

fn size() -> WorkloadSize {
    WorkloadSize {
        warps_per_cta: 8,
        ctas: 8,
        iters: 40,
        seed: 0xC0FFEE,
    }
}

fn run_kind(app: Benchmark, kind: PrefetcherKind) -> SimOutcome {
    let cfg = GpuConfig::scaled(1);
    let warps = cfg.max_warps_per_sm;
    run_kernel(cfg, app.build(&size()), |_| kind.build(warps)).expect("valid")
}

/// The figure-harness configuration (2 SMs, standard scale) — the
/// setting in which the cache-contention relationships are calibrated.
fn run_standard(app: Benchmark, kind: PrefetcherKind) -> SimOutcome {
    let cfg = GpuConfig::scaled(2);
    let warps = cfg.max_warps_per_sm;
    run_kernel(cfg, app.build(&WorkloadSize::standard()), |_| {
        kind.build(warps)
    })
    .expect("valid")
}

fn run_snake_cfg(app: Benchmark, mk: impl Fn() -> SnakeConfig) -> SimOutcome {
    let cfg = GpuConfig::scaled(1);
    run_kernel(cfg, app.build(&size()), |_| {
        Box::new(Snake::new(mk())) as Box<dyn Prefetcher>
    })
    .expect("valid")
}

#[test]
fn decoupling_and_throttling_win_on_cache_sensitive_hotspot() {
    // The paper's §5.2 claim, reproduced on the workload where cache
    // contention dominates: full Snake must clearly beat the variant
    // without decoupling/throttling. (Configuration-sensitive: holds
    // at the figure harness's scale, see EXPERIMENTS.md.)
    let snake = run_standard(Benchmark::Hotspot, PrefetcherKind::Snake);
    let dt = run_standard(Benchmark::Hotspot, PrefetcherKind::SnakeDt);
    assert!(
        snake.stats.ipc() > dt.stats.ipc() * 1.1,
        "snake {:.3} vs snake-dt {:.3}",
        snake.stats.ipc(),
        dt.stats.ipc()
    );
    assert!(
        snake.stats.l1.hit_rate() > dt.stats.l1.hit_rate(),
        "decoupling protects the L1: {:.3} vs {:.3}",
        snake.stats.l1.hit_rate(),
        dt.stats.l1.hit_rate()
    );
}

#[test]
fn unthrottled_variants_issue_more_prefetches() {
    let snake = run_kind(Benchmark::Lps, PrefetcherKind::Snake);
    let dt = run_kind(Benchmark::Lps, PrefetcherKind::SnakeDt);
    assert!(
        dt.stats.prefetch.requested > snake.stats.prefetch.requested,
        "no throttle => more aggressive: {} vs {}",
        dt.stats.prefetch.requested,
        snake.stats.prefetch.requested
    );
    assert!(snake.stats.prefetch.throttled_cycles > 0);
    assert_eq!(dt.stats.prefetch.throttled_cycles, 0);
}

#[test]
fn s_snake_never_uses_fixed_strides() {
    // On a workload whose chains are warp-private (Backprop), s-Snake
    // must produce almost nothing while full Snake covers via the
    // intra-warp stride.
    let s = run_kind(Benchmark::Backprop, PrefetcherKind::SSnake);
    let full = run_kind(Benchmark::Backprop, PrefetcherKind::Snake);
    assert!(
        full.stats.coverage() > s.stats.coverage() + 0.2,
        "fixed strides matter on backprop: {:.3} vs {:.3}",
        full.stats.coverage(),
        s.stats.coverage()
    );
}

#[test]
fn doubled_head_layout_tracks_the_ideal_table() {
    // §5.5: the paired layout with doubled columns must stay close to
    // the idealized per-warp table; the single-column layout falls
    // behind on chain-heavy streaming (LIB).
    let cov = |layout: HeadLayout| {
        run_snake_cfg(Benchmark::Lib, || SnakeConfig {
            head_warps: 16,
            head_layout: layout,
            ..SnakeConfig::snake()
        })
        .stats
        .coverage()
    };
    let ideal = cov(HeadLayout::PerWarp);
    let doubled = cov(HeadLayout::PairedDoubled);
    let single = cov(HeadLayout::PairedSingle);
    assert!(
        (ideal - doubled).abs() < 0.15,
        "doubled ~= ideal: {ideal:.3} vs {doubled:.3}"
    );
    assert!(
        single < doubled - 0.1,
        "single column loses history: {single:.3} vs {doubled:.3}"
    );
}

#[test]
fn per_app_chain_detection_beats_shared_pcs() {
    use snake_workloads::multi::{colocate, PcSpace};
    let cfg = GpuConfig::scaled(1);
    let warps = cfg.max_warps_per_sm;
    let s = size();
    let a = Benchmark::Lps.build(&s);
    let b = Benchmark::Mrq.build(&s);
    let tagged = run_kernel(cfg.clone(), colocate(&a, &b, PcSpace::PerApp), |_| {
        PrefetcherKind::Snake.build(warps)
    })
    .unwrap();
    let shared = run_kernel(cfg, colocate(&a, &b, PcSpace::Shared), |_| {
        PrefetcherKind::Snake.build(warps)
    })
    .unwrap();
    assert!(
        tagged.stats.coverage() > shared.stats.coverage() + 0.05,
        "§1 extension: {:.3} vs {:.3}",
        tagged.stats.coverage(),
        shared.stats.coverage()
    );
}

#[test]
fn isolated_snake_serves_hits_from_the_side_buffer() {
    // §5.7: prefetched lines live in a dedicated buffer; demand hits
    // there count as covered without the lines ever entering the L1.
    let iso = run_kind(Benchmark::Lps, PrefetcherKind::IsolatedSnake);
    assert!(iso.stats.prefetch.useful > 0, "buffer serves hits");
    assert!(
        iso.stats.coverage() > 0.2,
        "coverage {:.3}",
        iso.stats.coverage()
    );
    // The buffer never occupies L1 lines: demand-side raw hits remain
    // (LPS re-touches every line once per iteration).
    assert!(iso.stats.l1.hits + iso.stats.l1.hits_on_prefetch > 0);
}

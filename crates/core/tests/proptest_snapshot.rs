//! Property-based checkpoint round-trips for every registered
//! mechanism: after an arbitrary demand stream, `save_state` must
//! encode→decode→encode bit-stably through the json layer, restore
//! onto a freshly built mechanism, and leave the restored copy
//! behaviorally indistinguishable from the original on any
//! continuation of the stream.

use proptest::prelude::*;
use snake_core::PrefetcherKind;
use snake_sim::json;
use snake_sim::{
    AccessEvent, AccessOutcome, Address, CtaId, Cycle, Instr, KernelTrace, Pc, PrefetchContext,
    PrefetchRequest, Prefetcher, SmId, WarpId, WarpTrace,
};

/// Warp slots assumed by every mechanism built in this test.
const WARPS: u32 = 8;

#[derive(Debug, Clone, Copy)]
struct Load {
    warp: u32,
    pc: u32,
    addr: u64,
    outcome: AccessOutcome,
    bw: f64,
    free: u32,
    overrun: bool,
}

fn load() -> impl Strategy<Value = Load> {
    (
        (0u32..WARPS, 0u32..6, 0u64..1 << 16, 0usize..5),
        (0u32..=100, 0u32..=64, any::<bool>()),
    )
        .prop_map(|((warp, pc, addr, outcome), (bw, free, overrun))| Load {
            warp,
            pc: pc * 10,
            addr: (addr / 64) * 64,
            outcome: [
                AccessOutcome::Hit,
                AccessOutcome::HitPrefetch,
                AccessOutcome::HitReserved,
                AccessOutcome::Miss,
                AccessOutcome::ReservationFail,
            ][outcome],
            bw: f64::from(bw) / 100.0,
            free,
            overrun,
        })
}

/// A tiny kernel so oracle-style mechanisms have a launch input; the
/// trace content only matters in that it is identical for the
/// original and the restored copy.
fn launch_kernel() -> KernelTrace {
    let warps = (0..WARPS)
        .map(|w| {
            let instrs = (0..4u32)
                .map(|i| Instr::load(i * 10, u64::from(w * 4 + i) * 64))
                .collect();
            WarpTrace::new(CtaId(w / 4), instrs)
        })
        .collect();
    KernelTrace::new("proptest-snapshot", warps)
}

/// Feeds `loads` starting at `cycle0`, collecting every emitted
/// request plus the observable control state after each event.
fn drive(
    p: &mut dyn Prefetcher,
    loads: &[Load],
    cycle0: u64,
) -> (Vec<PrefetchRequest>, Vec<(bool, bool, u32)>) {
    let mut out = Vec::new();
    let mut issued = Vec::new();
    let mut control = Vec::new();
    for (i, l) in loads.iter().enumerate() {
        let cycle = Cycle(cycle0 + i as u64);
        let ev = AccessEvent {
            sm: SmId(0),
            warp: WarpId(l.warp),
            cta: CtaId(l.warp / 4),
            pc: Pc(l.pc),
            addr: Address(l.addr),
            outcome: l.outcome,
            cycle,
        };
        let ctx = PrefetchContext {
            cycle,
            bw_utilization: l.bw,
            free_lines: l.free,
            total_lines: 64,
            prefetch_overrun: l.overrun,
            telemetry: false,
        };
        out.clear();
        p.on_demand_access(&ev, &ctx, &mut out);
        issued.extend(out.iter().copied());
        control.push((p.throttled(cycle), p.trained(), p.chain_depth()));
    }
    (issued, control)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every mechanism: state captured mid-stream round-trips
    /// bit-stably through the json text encoding, restores onto a
    /// fresh instance, and the restored instance then emits exactly
    /// the same prefetches as the original on an arbitrary tail.
    #[test]
    fn every_mechanism_state_round_trips_and_resumes_identically(
        head in prop::collection::vec(load(), 1..120),
        tail in prop::collection::vec(load(), 1..60),
    ) {
        let kernel = launch_kernel();
        for &kind in PrefetcherKind::all() {
            let mut original = kind.build(WARPS);
            original.on_kernel_launch(&kernel);
            drive(original.as_mut(), &head, 0);

            // Encode → decode → encode is byte-stable.
            let state = original.save_state();
            let text = state.to_string();
            let reparsed = json::parse(&text)
                .unwrap_or_else(|e| panic!("{}: state is not valid json: {e}", kind.name()));
            prop_assert_eq!(
                reparsed.to_string(),
                text.clone(),
                "{}: encode/decode/encode must be bit-stable",
                kind.name()
            );

            // Restore onto a fresh instance; its state must re-encode
            // byte-identically...
            let mut restored = kind.build(WARPS);
            restored.on_kernel_launch(&kernel);
            restored
                .restore_state(&reparsed)
                .unwrap_or_else(|e| panic!("{}: restore failed: {e}", kind.name()));
            prop_assert_eq!(
                restored.save_state().to_string(),
                text,
                "{}: restored state must re-encode identically",
                kind.name()
            );

            // ...and the continuation must be indistinguishable.
            let cycle0 = head.len() as u64;
            let expect = drive(original.as_mut(), &tail, cycle0);
            let got = drive(restored.as_mut(), &tail, cycle0);
            prop_assert_eq!(
                got,
                expect,
                "{}: restored mechanism diverged on the tail stream",
                kind.name()
            );
        }
    }
}
